//! A reduced ordered binary decision diagram (ROBDD) package.
//!
//! BDDs are the symbolic function representation at the *reversible
//! synthesis level* interface of the paper's functional flow: the optimized
//! AIG is collapsed into a BDD (ABC `collapse`), the optimum embedding is
//! computed on it, and ESOP expressions are extracted from it via PSDKRO
//! expansion.
//!
//! The manager uses a unique table for canonicity and an operation cache for
//! memoized apply. No complement edges, no dynamic reordering — variable
//! order is the natural input order, which is adequate for the arithmetic
//! functions of the paper.
//!
//! # Example
//!
//! ```
//! use qda_bdd::BddManager;
//!
//! let mut mgr = BddManager::new(3);
//! let x0 = mgr.var(0);
//! let x1 = mgr.var(1);
//! let f = mgr.and(x0, x1);
//! assert_eq!(mgr.sat_count(f), 2); // x2 free
//! ```

use qda_logic::hash::{FxHashMap, FxHashSet};
use std::fmt;

/// Handle to a BDD node inside a [`BddManager`].
///
/// Handles are only meaningful with the manager that created them.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct Bdd(u32);

impl Bdd {
    /// The constant-false BDD.
    pub const FALSE: Bdd = Bdd(0);
    /// The constant-true BDD.
    pub const TRUE: Bdd = Bdd(1);

    /// Whether this is a terminal node.
    pub fn is_const(self) -> bool {
        self.0 <= 1
    }

    /// Raw index (for diagnostics).
    pub fn index(self) -> u32 {
        self.0
    }
}

#[derive(Clone, Copy, PartialEq, Eq, Hash)]
struct Node {
    var: u32,
    lo: Bdd,
    hi: Bdd,
}

#[derive(Clone, Copy, PartialEq, Eq, Hash)]
enum Op {
    And,
    Or,
    Xor,
}

/// The BDD manager: owns all nodes, the unique table, and operation caches.
pub struct BddManager {
    num_vars: usize,
    nodes: Vec<Node>,
    unique: FxHashMap<Node, Bdd>,
    cache: FxHashMap<(Op, Bdd, Bdd), Bdd>,
    not_cache: FxHashMap<Bdd, Bdd>,
}

impl BddManager {
    /// Creates a manager over `num_vars` variables (order = index order).
    pub fn new(num_vars: usize) -> Self {
        // Slots 0/1 are the terminals; their fields are sentinels.
        let term = Node {
            var: u32::MAX,
            lo: Bdd::FALSE,
            hi: Bdd::FALSE,
        };
        Self {
            num_vars,
            nodes: vec![term, term],
            unique: FxHashMap::default(),
            cache: FxHashMap::default(),
            not_cache: FxHashMap::default(),
        }
    }

    /// Number of variables.
    pub fn num_vars(&self) -> usize {
        self.num_vars
    }

    /// Total allocated nodes (including both terminals).
    pub fn num_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// Number of nodes reachable from `f` (its BDD size), terminals
    /// excluded.
    pub fn size(&self, f: Bdd) -> usize {
        let mut seen = FxHashSet::default();
        let mut stack = vec![f];
        while let Some(n) = stack.pop() {
            if n.is_const() || !seen.insert(n) {
                continue;
            }
            let node = self.nodes[n.0 as usize];
            stack.push(node.lo);
            stack.push(node.hi);
        }
        seen.len()
    }

    fn mk(&mut self, var: u32, lo: Bdd, hi: Bdd) -> Bdd {
        if lo == hi {
            return lo;
        }
        let node = Node { var, lo, hi };
        if let Some(&b) = self.unique.get(&node) {
            return b;
        }
        let b = Bdd(self.nodes.len() as u32);
        self.nodes.push(node);
        self.unique.insert(node, b);
        b
    }

    /// The projection function of variable `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= num_vars`.
    pub fn var(&mut self, i: usize) -> Bdd {
        assert!(i < self.num_vars, "variable {i} out of range");
        self.mk(i as u32, Bdd::FALSE, Bdd::TRUE)
    }

    /// The negated projection of variable `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= num_vars`.
    pub fn nvar(&mut self, i: usize) -> Bdd {
        assert!(i < self.num_vars, "variable {i} out of range");
        self.mk(i as u32, Bdd::TRUE, Bdd::FALSE)
    }

    /// Top variable of `f` (`u32::MAX` for terminals).
    pub fn top_var(&self, f: Bdd) -> u32 {
        if f.is_const() {
            u32::MAX
        } else {
            self.nodes[f.0 as usize].var
        }
    }

    /// Children of `f` assuming its top variable is `var` (returns `(f, f)`
    /// if `f` does not test `var`).
    pub fn branches(&self, f: Bdd, var: u32) -> (Bdd, Bdd) {
        if f.is_const() || self.nodes[f.0 as usize].var != var {
            (f, f)
        } else {
            let n = self.nodes[f.0 as usize];
            (n.lo, n.hi)
        }
    }

    fn apply(&mut self, op: Op, f: Bdd, g: Bdd) -> Bdd {
        match op {
            Op::And => {
                if f == Bdd::FALSE || g == Bdd::FALSE {
                    return Bdd::FALSE;
                }
                if f == Bdd::TRUE {
                    return g;
                }
                if g == Bdd::TRUE || f == g {
                    return f;
                }
            }
            Op::Or => {
                if f == Bdd::TRUE || g == Bdd::TRUE {
                    return Bdd::TRUE;
                }
                if f == Bdd::FALSE {
                    return g;
                }
                if g == Bdd::FALSE || f == g {
                    return f;
                }
            }
            Op::Xor => {
                if f == g {
                    return Bdd::FALSE;
                }
                if f == Bdd::FALSE {
                    return g;
                }
                if g == Bdd::FALSE {
                    return f;
                }
            }
        }
        // Canonical argument order for the commutative ops.
        let (f, g) = if f <= g { (f, g) } else { (g, f) };
        if let Some(&r) = self.cache.get(&(op, f, g)) {
            return r;
        }
        let var = self.top_var(f).min(self.top_var(g));
        let (f0, f1) = self.branches(f, var);
        let (g0, g1) = self.branches(g, var);
        let lo = self.apply(op, f0, g0);
        let hi = self.apply(op, f1, g1);
        let r = self.mk(var, lo, hi);
        self.cache.insert((op, f, g), r);
        r
    }

    /// Conjunction.
    pub fn and(&mut self, f: Bdd, g: Bdd) -> Bdd {
        self.apply(Op::And, f, g)
    }

    /// Disjunction.
    pub fn or(&mut self, f: Bdd, g: Bdd) -> Bdd {
        self.apply(Op::Or, f, g)
    }

    /// Exclusive or.
    pub fn xor(&mut self, f: Bdd, g: Bdd) -> Bdd {
        self.apply(Op::Xor, f, g)
    }

    /// Negation.
    pub fn not(&mut self, f: Bdd) -> Bdd {
        if f == Bdd::FALSE {
            return Bdd::TRUE;
        }
        if f == Bdd::TRUE {
            return Bdd::FALSE;
        }
        if let Some(&r) = self.not_cache.get(&f) {
            return r;
        }
        let node = self.nodes[f.0 as usize];
        let lo = self.not(node.lo);
        let hi = self.not(node.hi);
        let r = self.mk(node.var, lo, hi);
        self.not_cache.insert(f, r);
        r
    }

    /// If-then-else `s ? t : e`.
    pub fn ite(&mut self, s: Bdd, t: Bdd, e: Bdd) -> Bdd {
        let st = self.and(s, t);
        let ns = self.not(s);
        let se = self.and(ns, e);
        self.or(st, se)
    }

    /// Shannon cofactor of `f` with variable `var` fixed to `value`.
    pub fn cofactor(&mut self, f: Bdd, var: usize, value: bool) -> Bdd {
        if f.is_const() {
            return f;
        }
        let node = self.nodes[f.0 as usize];
        match node.var.cmp(&(var as u32)) {
            std::cmp::Ordering::Greater => f,
            std::cmp::Ordering::Equal => {
                if value {
                    node.hi
                } else {
                    node.lo
                }
            }
            std::cmp::Ordering::Less => {
                let lo = self.cofactor(node.lo, var, value);
                let hi = self.cofactor(node.hi, var, value);
                self.mk(node.var, lo, hi)
            }
        }
    }

    /// Evaluates `f` on an assignment (bit `i` of `x` = variable `i`).
    pub fn eval(&self, f: Bdd, x: u64) -> bool {
        let mut cur = f;
        while !cur.is_const() {
            let node = self.nodes[cur.0 as usize];
            cur = if (x >> node.var) & 1 == 1 {
                node.hi
            } else {
                node.lo
            };
        }
        cur == Bdd::TRUE
    }

    /// Number of satisfying assignments over all `num_vars` variables.
    pub fn sat_count(&self, f: Bdd) -> u128 {
        fn rec(mgr: &BddManager, f: Bdd, memo: &mut FxHashMap<Bdd, u128>) -> u128 {
            // Count over variables strictly below (after) top_var(f).
            if f == Bdd::FALSE {
                return 0;
            }
            if f == Bdd::TRUE {
                return 1;
            }
            if let Some(&c) = memo.get(&f) {
                return c;
            }
            let node = mgr.nodes[f.0 as usize];
            let lo = rec(mgr, node.lo, memo);
            let hi = rec(mgr, node.hi, memo);
            let lo_var = mgr.top_var(node.lo).min(mgr.num_vars as u32);
            let hi_var = mgr.top_var(node.hi).min(mgr.num_vars as u32);
            let c = (lo << (lo_var - node.var - 1)) + (hi << (hi_var - node.var - 1));
            memo.insert(f, c);
            c
        }
        let mut memo = FxHashMap::default();
        let c = rec(self, f, &mut memo);
        let top = self.top_var(f).min(self.num_vars as u32);
        c << top
    }

    /// The variables `f` depends on.
    pub fn support(&self, f: Bdd) -> Vec<usize> {
        let mut vars = std::collections::BTreeSet::new();
        let mut seen = FxHashSet::default();
        let mut stack = vec![f];
        while let Some(n) = stack.pop() {
            if n.is_const() || !seen.insert(n) {
                continue;
            }
            let node = self.nodes[n.0 as usize];
            vars.insert(node.var as usize);
            stack.push(node.lo);
            stack.push(node.hi);
        }
        vars.into_iter().collect()
    }

    /// Builds the BDD of an explicit truth table (testing convenience).
    ///
    /// # Panics
    ///
    /// Panics if the table has more variables than the manager.
    pub fn from_truth_table(&mut self, tt: &qda_logic::tt::TruthTable) -> Bdd {
        assert!(tt.num_vars() <= self.num_vars, "arity exceeds manager");
        // Variable 0 is the top of the order, so recurse ascending.
        fn rec(mgr: &mut BddManager, tt: &qda_logic::tt::TruthTable, var: usize) -> Bdd {
            if tt.is_zero() {
                return Bdd::FALSE;
            }
            if tt.is_one() {
                return Bdd::TRUE;
            }
            if var >= tt.num_vars() {
                return if tt.get(0) { Bdd::TRUE } else { Bdd::FALSE };
            }
            let lo_tt = tt.cofactor(var, false);
            let hi_tt = tt.cofactor(var, true);
            let lo = rec(mgr, &lo_tt, var + 1);
            let hi = rec(mgr, &hi_tt, var + 1);
            mgr.mk(var as u32, lo, hi)
        }
        rec(self, tt, 0)
    }

    /// Expands `f` back into an explicit truth table over `num_vars`
    /// variables (verification; exponential).
    pub fn to_truth_table(&self, f: Bdd) -> qda_logic::tt::TruthTable {
        qda_logic::tt::TruthTable::from_fn(self.num_vars, |x| self.eval(f, x))
    }

    /// One satisfying assignment, if any.
    pub fn pick_one(&self, f: Bdd) -> Option<u64> {
        if f == Bdd::FALSE {
            return None;
        }
        let mut x = 0u64;
        let mut cur = f;
        while !cur.is_const() {
            let node = self.nodes[cur.0 as usize];
            if node.hi != Bdd::FALSE {
                x |= 1 << node.var;
                cur = node.hi;
            } else {
                cur = node.lo;
            }
        }
        Some(x)
    }
}

impl fmt::Debug for BddManager {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "BddManager({} vars, {} nodes)",
            self.num_vars,
            self.nodes.len()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qda_logic::tt::TruthTable;

    #[test]
    fn basic_operations() {
        let mut mgr = BddManager::new(3);
        let x0 = mgr.var(0);
        let x1 = mgr.var(1);
        let x2 = mgr.var(2);
        let f = mgr.and(x0, x1);
        let g = mgr.or(f, x2);
        for x in 0..8u64 {
            let expected = ((x & 1 == 1) && (x >> 1) & 1 == 1) || (x >> 2) & 1 == 1;
            assert_eq!(mgr.eval(g, x), expected);
        }
    }

    #[test]
    fn canonicity_equal_functions_share_node() {
        let mut mgr = BddManager::new(2);
        let x0 = mgr.var(0);
        let x1 = mgr.var(1);
        // (x0 & x1) | (x0 & !x1) == x0
        let nx1 = mgr.not(x1);
        let a = mgr.and(x0, x1);
        let b = mgr.and(x0, nx1);
        let f = mgr.or(a, b);
        assert_eq!(f, x0);
    }

    #[test]
    fn xor_and_not() {
        let mut mgr = BddManager::new(4);
        let vars: Vec<Bdd> = (0..4).map(|i| mgr.var(i)).collect();
        let mut f = vars[0];
        for &v in &vars[1..] {
            f = mgr.xor(f, v);
        }
        assert_eq!(mgr.sat_count(f), 8);
        let nf = mgr.not(f);
        assert_eq!(mgr.sat_count(nf), 8);
        let both = mgr.and(f, nf);
        assert_eq!(both, Bdd::FALSE);
    }

    #[test]
    fn sat_count_with_free_variables() {
        let mut mgr = BddManager::new(5);
        let x2 = mgr.var(2);
        assert_eq!(mgr.sat_count(x2), 16);
        assert_eq!(mgr.sat_count(Bdd::TRUE), 32);
        assert_eq!(mgr.sat_count(Bdd::FALSE), 0);
    }

    #[test]
    fn cofactor_fixes_variable() {
        let mut mgr = BddManager::new(3);
        let x0 = mgr.var(0);
        let x1 = mgr.var(1);
        let x2 = mgr.var(2);
        let t = mgr.and(x1, x2);
        let f = mgr.ite(x0, t, x2);
        let f1 = mgr.cofactor(f, 0, true);
        let f0 = mgr.cofactor(f, 0, false);
        assert_eq!(f1, t);
        assert_eq!(f0, x2);
        // Cofactor on a deeper variable: f with x2=0 is x0 & x1 & 0 | ... = 0.
        let f_x2_0 = mgr.cofactor(f, 2, false);
        assert_eq!(f_x2_0, Bdd::FALSE);
    }

    #[test]
    fn truth_table_round_trip() {
        let tt = TruthTable::from_fn(5, |x| (x * 7) % 11 < 5);
        let mut mgr = BddManager::new(5);
        let f = mgr.from_truth_table(&tt);
        assert_eq!(mgr.to_truth_table(f), tt);
        assert_eq!(mgr.sat_count(f) as u64, tt.count_ones());
    }

    #[test]
    fn support_and_size() {
        let mut mgr = BddManager::new(4);
        let x0 = mgr.var(0);
        let x3 = mgr.var(3);
        let f = mgr.xor(x0, x3);
        assert_eq!(mgr.support(f), vec![0, 3]);
        assert_eq!(mgr.size(f), 3); // one x0 node + two x3 nodes
    }

    #[test]
    fn pick_one_satisfies() {
        let mut mgr = BddManager::new(6);
        let a = mgr.var(1);
        let b = mgr.nvar(4);
        let f = mgr.and(a, b);
        let x = mgr.pick_one(f).expect("satisfiable");
        assert!(mgr.eval(f, x));
        assert_eq!(mgr.pick_one(Bdd::FALSE), None);
    }

    #[test]
    fn ite_matches_mux_semantics() {
        let mut mgr = BddManager::new(3);
        let s = mgr.var(0);
        let t = mgr.var(1);
        let e = mgr.var(2);
        let f = mgr.ite(s, t, e);
        for x in 0..8u64 {
            let (vs, vt, ve) = (x & 1 == 1, (x >> 1) & 1 == 1, (x >> 2) & 1 == 1);
            assert_eq!(mgr.eval(f, x), if vs { vt } else { ve });
        }
    }

    #[test]
    fn nvar_is_not_var() {
        let mut mgr = BddManager::new(2);
        let v = mgr.var(1);
        let nv = mgr.nvar(1);
        let n = mgr.not(v);
        assert_eq!(nv, n);
    }
}
