//! Property-based tests: BDD operations against explicit truth tables.

use proptest::prelude::*;
use qda_bdd::BddManager;
use qda_logic::tt::TruthTable;

fn arb_tt(n: usize) -> impl Strategy<Value = TruthTable> {
    prop::collection::vec(any::<u64>(), 1usize.max(1 << n.saturating_sub(6)))
        .prop_map(move |words| TruthTable::from_words(n, words))
}

proptest! {
    #[test]
    fn bdd_round_trip(tt in arb_tt(6)) {
        let mut mgr = BddManager::new(6);
        let f = mgr.from_truth_table(&tt);
        prop_assert_eq!(mgr.to_truth_table(f), tt);
    }

    #[test]
    fn bdd_ops_match_tt_ops(a in arb_tt(6), b in arb_tt(6)) {
        let mut mgr = BddManager::new(6);
        let fa = mgr.from_truth_table(&a);
        let fb = mgr.from_truth_table(&b);
        let and = mgr.and(fa, fb);
        let or = mgr.or(fa, fb);
        let xor = mgr.xor(fa, fb);
        prop_assert_eq!(mgr.to_truth_table(and), &a & &b);
        prop_assert_eq!(mgr.to_truth_table(or), &a | &b);
        prop_assert_eq!(mgr.to_truth_table(xor), &a ^ &b);
    }

    #[test]
    fn bdd_canonicity(a in arb_tt(6), b in arb_tt(6)) {
        // Equal functions produce the *same node*.
        let mut mgr = BddManager::new(6);
        let fa = mgr.from_truth_table(&a);
        let fb = mgr.from_truth_table(&b);
        prop_assert_eq!(fa == fb, a == b);
    }

    #[test]
    fn sat_count_matches_count_ones(tt in arb_tt(6)) {
        let mut mgr = BddManager::new(6);
        let f = mgr.from_truth_table(&tt);
        prop_assert_eq!(mgr.sat_count(f) as u64, tt.count_ones());
    }

    #[test]
    fn cofactor_matches_tt_cofactor(tt in arb_tt(6), var in 0usize..6, val in any::<bool>()) {
        let mut mgr = BddManager::new(6);
        let f = mgr.from_truth_table(&tt);
        let cof = mgr.cofactor(f, var, val);
        prop_assert_eq!(mgr.to_truth_table(cof), tt.cofactor(var, val));
    }
}
