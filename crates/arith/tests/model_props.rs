//! Property tests pinning the reciprocal generators — the reversible
//! RESDIV/QNEWTON baselines and the INTDIV/NEWTON Verilog generators —
//! against the scalar fixed-point reference models in `qda_arith::recip`
//! and `qda_arith::fixed`, across widths and iteration counts.

use proptest::prelude::*;
use qda_arith::fixed::Fixed;
use qda_arith::resdiv::{resdiv_circuit, resdiv_reciprocal};
use qda_arith::{
    intdiv_verilog, newton_iterations, newton_verilog, qnewton_circuit, recip_intdiv, recip_newton,
};
use qda_rev::state::BitState;

/// Runs a RESDIV instance on `(a, b)` and reads back `(q, r)`.
fn run_resdiv(d: &qda_arith::resdiv::ResdivCircuit, a: u64, b: u64) -> (u64, u64) {
    let mut s = BitState::zeros(d.circuit.num_lines());
    s.write_register(&d.dividend_lines, a);
    s.write_register(&d.divisor_lines, b);
    d.circuit.apply(&mut s);
    (
        s.read_register(&d.quotient_lines),
        s.read_register(&d.remainder_lines),
    )
}

/// Elaborates generated Verilog down to an AIG.
fn elaborate(src: &str) -> qda_logic::Aig {
    let module = qda_verilog::parse_module(src).expect("generator output must parse");
    qda_verilog::elaborate(&module).expect("generator output must elaborate")
}

proptest! {
    #[test]
    fn resdiv_divides_like_the_integers(bits in 2usize..6, seed in any::<u64>()) {
        let d = resdiv_circuit(bits);
        let mask = (1u64 << bits) - 1;
        let a = seed & mask;
        let b = (seed >> 16) & mask;
        let (q, r) = run_resdiv(&d, a, b);
        match (a.checked_div(b), a.checked_rem(b)) {
            (Some(quotient), Some(remainder)) => {
                prop_assert_eq!(q, quotient);
                prop_assert_eq!(r & mask, remainder);
            }
            _ => {
                // Restoring division's natural saturation on b == 0.
                prop_assert_eq!(q, mask);
                prop_assert_eq!(r & mask, a);
            }
        }
    }

    #[test]
    fn resdiv_reciprocal_matches_the_intdiv_model(n in 2usize..5, seed in any::<u64>()) {
        let d = resdiv_reciprocal(n);
        let mask = (1u64 << n) - 1;
        let x = (seed & mask).max(1);
        let mut s = BitState::zeros(d.circuit.num_lines());
        s.write_register(&d.divisor_lines, x);
        d.circuit.apply(&mut s);
        let y = s.read_register(&d.quotient_lines) & mask;
        prop_assert_eq!(y, recip_intdiv(n, x));
    }

    #[test]
    fn qnewton_matches_the_newton_model(n in 4usize..7, seed in any::<u64>()) {
        let q = qnewton_circuit(n);
        let mask = (1u64 << n) - 1;
        let x = (seed & mask).max(1);
        let mut s = BitState::zeros(q.circuit.num_lines());
        s.write_register(&q.input_lines, x);
        q.circuit.apply(&mut s);
        prop_assert_eq!(s.read_register(&q.output_lines), recip_newton(n, x));
        prop_assert_eq!(s.read_register(&q.input_lines), x, "input preserved");
    }

    #[test]
    fn intdiv_verilog_elaborates_to_the_model(n in 2usize..7, seed in any::<u64>()) {
        let aig = elaborate(&intdiv_verilog(n));
        let x = seed & ((1u64 << n) - 1);
        prop_assert_eq!(aig.eval(x), recip_intdiv(n, x));
    }

    // `x = 0` is excluded below: the model defines `1/0 = 0` while the
    // generated normalizer's leading-one detector finds no bit to align.

    #[test]
    fn newton_verilog_elaborates_to_the_model(n in 4usize..7, seed in any::<u64>()) {
        let aig = elaborate(&newton_verilog(n));
        let x = (seed & ((1u64 << n) - 1)).max(1);
        prop_assert_eq!(aig.eval(x), recip_newton(n, x));
    }

    #[test]
    fn mul_trunc_floors_the_real_product(w in 4u32..12, seed in any::<u64>()) {
        // Restrict both factors below 1.0 so the Q3.w wrap never kicks in
        // and truncation is the only approximation.
        let mask = (1u128 << w) - 1;
        let a = Fixed::from_raw(seed as u128 & mask, w);
        let b = Fixed::from_raw((seed >> 32) as u128 & mask, w);
        let p = a.mul_trunc(b, w);
        let real = a.to_f64() * b.to_f64();
        prop_assert!(p.to_f64() <= real);
        prop_assert!(real - p.to_f64() < 1.0 / (1u64 << w) as f64);
    }

    #[test]
    fn wrapping_add_and_sub_invert_each_other(w in 4u32..12, seed in any::<u64>()) {
        let mask = (1u128 << (w + 3)) - 1;
        let a = Fixed::from_raw(seed as u128 & mask, w);
        let b = Fixed::from_raw((seed >> 32) as u128 & mask, w);
        prop_assert_eq!(a.wrapping_add(b).wrapping_sub(b), a);
        prop_assert_eq!(a.wrapping_sub(b).wrapping_add(b), a);
    }

    #[test]
    fn widening_round_trips_through_any_wider_format(
        w in 4u32..12,
        extra in 0u32..8,
        seed in any::<u64>(),
    ) {
        let a = Fixed::from_raw(seed as u128 & ((1u128 << (w + 3)) - 1), w);
        let wide = a.with_frac_bits(w + extra);
        prop_assert_eq!(wide.to_f64(), a.to_f64());
        prop_assert_eq!(wide.with_frac_bits(w), a);
    }

    #[test]
    fn newton_iteration_count_is_monotone(n in 1usize..128) {
        prop_assert!(newton_iterations(n) <= newton_iterations(n + 1));
        prop_assert!(newton_iterations(n) >= 1);
    }
}
