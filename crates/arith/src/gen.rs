//! Verilog source generators for the two reciprocal designs (paper §III).
//!
//! The design flows of the paper start from Verilog, so the designs are
//! *generated as source text* and re-enter the toolchain through the
//! `qda-verilog` parser — the same journey a hand-written design would
//! take.

/// Binary literal (MSB-first digits) of `⌊num·2^frac / den⌋`, `width` bits,
/// computed by streaming long division so it works far beyond `u64`
/// (needed for `NEWTON(128)` constants).
fn ratio_literal(num: u64, den: u64, frac: usize, width: usize) -> String {
    // Dividend bits, MSB first: `num` then `frac` zeros.
    let num_bits = 64 - num.leading_zeros() as usize;
    let mut quotient = String::new();
    let mut rem: u64 = 0;
    for i in 0..(num_bits + frac) {
        let bit = if i < num_bits {
            (num >> (num_bits - 1 - i)) & 1
        } else {
            0
        };
        rem = rem * 2 + bit;
        if rem >= den {
            rem -= den;
            quotient.push('1');
        } else {
            quotient.push('0');
        }
    }
    let trimmed = quotient.trim_start_matches('0');
    let digits = if trimmed.is_empty() { "0" } else { trimmed };
    assert!(
        digits.len() <= width,
        "constant does not fit in {width} bits"
    );
    format!("{width}'b{}{}", "0".repeat(width - digits.len()), digits)
}

/// Binary literal of `2^exp` with the given width.
fn power_of_two_literal(exp: usize, width: usize) -> String {
    assert!(exp < width);
    format!(
        "{width}'b{}1{}",
        "0".repeat(width - exp - 1),
        "0".repeat(exp)
    )
}

/// Generates `INTDIV(n)`: the reciprocal via Verilog's integer division
/// operator (paper §III-1). `y` is the low `n` bits of the `(n+1)`-bit
/// quotient `2ⁿ / x`.
///
/// # Panics
///
/// Panics if `n < 2`.
///
/// # Example
///
/// ```
/// let src = qda_arith::intdiv_verilog(8);
/// let module = qda_verilog::parse_module(&src)?;
/// assert_eq!(module.name, "intdiv_8");
/// # Ok::<(), qda_verilog::VerilogError>(())
/// ```
pub fn intdiv_verilog(n: usize) -> String {
    assert!(n >= 2, "n must be at least 2");
    let top = n; // widths in [msb:lsb] form
    let pw2 = power_of_two_literal(n, n + 1);
    format!(
        "// INTDIV({n}): y = low {n} bits of (2^{n} / x), both (n+1)-bit unsigned.\n\
         module intdiv_{n}(x, y);\n\
         \x20 input [{xm}:0] x;\n\
         \x20 output [{xm}:0] y;\n\
         \x20 wire [{top}:0] xe;\n\
         \x20 wire [{top}:0] q;\n\
         \x20 assign xe = {{1'b0, x}};\n\
         \x20 assign q = {pw2} / xe;\n\
         \x20 assign y = q[{xm}:0];\n\
         endmodule\n",
        xm = n - 1,
    )
}

/// Generates `NEWTON(n)`: the reciprocal via the Newton–Raphson method on
/// fixed-point numbers (paper §III-2).
///
/// Layout of the generated design:
///
/// 1. normalization `x' = x / 2^e ∈ [1/2, 1)` by a leading-one priority
///    chain (all shifts by constants),
/// 2. initial value `x₀ = 48/17 − (32/17) ∗ x'`,
/// 3. `I = ⌈log₂((n+1)/log₂17)⌉` iterations
///    `xᵢ ← xᵢ₋₁ + xᵢ₋₁ ∗ (1 − x' ∗ xᵢ₋₁)` in `Q3.2n`,
/// 4. denormalization `y' = x_I ≫ e` (variable shift) and extraction of
///    the top `n` fractional bits.
///
/// # Panics
///
/// Panics if `n < 4`.
pub fn newton_verilog(n: usize) -> String {
    assert!(n >= 4, "n must be at least 4");
    let iterations = crate::recip::newton_iterations(n);
    let p = n + 3; // Q3.n raw width
    let w = 2 * n + 3; // Q3.2n raw width
    let eb = usize::BITS as usize - n.leading_zeros() as usize; // bits for e ∈ [0, n]
    let mut s = String::new();
    s.push_str(&format!(
        "// NEWTON({n}): reciprocal via Newton-Raphson in Q3.{m} fixed point,\n\
         // {iterations} iteration(s).\n\
         module newton_{n}(x, y);\n\
         \x20 input [{xm}:0] x;\n\
         \x20 output [{xm}:0] y;\n",
        m = 2 * n,
        xm = n - 1
    ));
    // Normalization chain.
    s.push_str(&format!(
        "  wire [{pm}:0] xe;\n  assign xe = {{3'b000, x}};\n  wire [{pm}:0] xpn;\n  wire [{em}:0] e;\n",
        pm = p - 1,
        em = eb - 1
    ));
    // xpn = xe << (n-1-k) for the highest set bit k; e = k+1.
    s.push_str("  assign xpn = ");
    for k in (0..n).rev() {
        s.push_str(&format!("x[{k}] ? (xe << {sh}) : ", sh = n - 1 - k));
    }
    s.push_str(&format!("{p}'b{};\n", "0".repeat(p)));
    s.push_str("  assign e = ");
    for k in (0..n).rev() {
        s.push_str(&format!("x[{k}] ? {eb}'d{v} : ", v = k + 1));
    }
    s.push_str(&format!("{eb}'d0;\n"));
    // x' widened to Q3.2n.
    s.push_str(&format!(
        "  wire [{wm}:0] xpw;\n  assign xpw = {{xpn, {n}'b{z}}};\n",
        wm = w - 1,
        z = "0".repeat(n)
    ));
    // x0 = C1 - C2 * x'.
    let c1 = ratio_literal(48, 17, 2 * n, w);
    let c2 = ratio_literal(32, 17, n, p);
    // The 1/8 bias keeps x0 strictly below 1/x' so the recurrence stays
    // non-negative in unsigned arithmetic (see `newton_iterations`).
    let bias = power_of_two_literal(2 * n - 3, w);
    s.push_str(&format!(
        "  wire [{fm}:0] m0full;\n  assign m0full = {c2} * xpn;\n\
         \x20 wire [{wm}:0] x_0;\n  assign x_0 = ({c1} - m0full[{wm}:0]) - {bias};\n",
        fm = 2 * p - 1,
        wm = w - 1
    ));
    // Iterations.
    let one = power_of_two_literal(2 * n, w);
    for i in 0..iterations {
        let (cur, next) = (format!("x_{i}"), format!("x_{}", i + 1));
        s.push_str(&format!(
            "  wire [{ffm}:0] tfull_{i};\n  assign tfull_{i} = xpw * {cur};\n\
             \x20 wire [{wm}:0] t_{i};\n  assign t_{i} = tfull_{i}[{hi}:{lo}];\n\
             \x20 wire [{wm}:0] d_{i};\n  assign d_{i} = {one} - t_{i};\n\
             \x20 wire [{ffm}:0] ufull_{i};\n  assign ufull_{i} = {cur} * d_{i};\n\
             \x20 wire [{wm}:0] u_{i};\n  assign u_{i} = ufull_{i}[{hi}:{lo}];\n\
             \x20 wire [{wm}:0] {next};\n  assign {next} = {cur} + u_{i};\n",
            ffm = 2 * w - 1,
            wm = w - 1,
            hi = w + 2 * n - 1,
            lo = 2 * n,
        ));
    }
    // Denormalize and extract.
    s.push_str(&format!(
        "  wire [{wm}:0] yp;\n  assign yp = x_{iterations} >> e;\n\
         \x20 assign y = yp[{hi}:{n}];\n\
         endmodule\n",
        wm = w - 1,
        hi = 2 * n - 1,
    ));
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::recip::{recip_intdiv, recip_newton};
    use qda_verilog::{elaborate, parse_module};

    #[test]
    fn ratio_literal_values() {
        // 48/17 * 2^8 = 722.8… → 722 = 0b1011010010.
        let lit = ratio_literal(48, 17, 8, 12);
        assert_eq!(lit, "12'b001011010010");
        // 1/1 * 2^4 = 16.
        assert_eq!(ratio_literal(1, 1, 4, 6), "6'b010000");
    }

    #[test]
    fn intdiv_elaborates_and_matches_model() {
        for n in [4usize, 6, 8] {
            let src = intdiv_verilog(n);
            let module = parse_module(&src).expect("parse");
            let aig = elaborate(&module).expect("elaborate");
            assert_eq!(aig.num_pis(), n);
            assert_eq!(aig.num_pos(), n);
            for x in 1..(1u64 << n) {
                assert_eq!(aig.eval(x), recip_intdiv(n, x), "n={n} x={x}");
            }
        }
    }

    #[test]
    fn newton_elaborates_and_matches_model() {
        for n in [4usize, 6, 8] {
            let src = newton_verilog(n);
            let module = parse_module(&src).expect("parse");
            let aig = elaborate(&module).expect("elaborate");
            assert_eq!(aig.num_pis(), n);
            assert_eq!(aig.num_pos(), n);
            for x in 1..(1u64 << n) {
                assert_eq!(aig.eval(x), recip_newton(n, x), "n={n} x={x}");
            }
        }
    }

    #[test]
    fn generators_scale_to_large_n() {
        // Parse + elaborate only (no exhaustive simulation).
        let src = intdiv_verilog(64);
        let aig = elaborate(&parse_module(&src).unwrap()).unwrap();
        assert_eq!(aig.num_pis(), 64);
        let src = newton_verilog(32);
        let aig = elaborate(&parse_module(&src).unwrap()).unwrap();
        assert_eq!(aig.num_pis(), 32);
    }
}
