//! Reciprocal designs and manual baselines (paper §III and Table I).
//!
//! * [`recip`] — golden software models of the two reciprocal designs:
//!   INTDIV (integer division) and NEWTON (fixed-point Newton–Raphson);
//! * [`gen`] — Verilog *source generators* for `INTDIV(n)` and
//!   `NEWTON(n)`, so the design flows genuinely start at the design level;
//! * [`fixed`] — the `Q3.w` unsigned fixed-point helpers backing the
//!   Newton model;
//! * [`resdiv`] — the RESDIV baseline: a reversible restoring-division
//!   circuit built from Cuccaro adders (`~3N` qubits for an `N`-bit
//!   divider; the reciprocal uses the `N = 2n` instance);
//! * [`qnewton`] — the QNEWTON baseline: a hand-built reversible
//!   Newton–Raphson reciprocal.

pub mod fixed;
pub mod gen;
pub mod qnewton;
pub mod recip;
pub mod resdiv;

pub use gen::{intdiv_verilog, newton_verilog};
pub use qnewton::qnewton_circuit;
pub use recip::{newton_iterations, recip_intdiv, recip_newton};
pub use resdiv::resdiv_circuit;
