//! Reciprocal designs and manual baselines (paper §III and Table I).
//!
//! * [`recip`] — golden software models of the two reciprocal designs:
//!   INTDIV (integer division) and NEWTON (fixed-point Newton–Raphson);
//! * [`gen`] — Verilog *source generators* for `INTDIV(n)` and
//!   `NEWTON(n)`, so the design flows genuinely start at the design level;
//! * [`fixed`] — the `Q3.w` unsigned fixed-point helpers backing the
//!   Newton model;
//! * [`resdiv`] — the RESDIV baseline: a reversible restoring-division
//!   circuit built from Cuccaro adders (`~3N` qubits for an `N`-bit
//!   divider; the reciprocal uses the `N = 2n` instance);
//! * [`qnewton`] — the QNEWTON baseline: a hand-built reversible
//!   Newton–Raphson reciprocal.
//!
//! # Example
//!
//! The golden model and the generated Verilog agree: elaborating
//! `INTDIV(4)` and simulating the AIG reproduces [`recip_intdiv`]:
//!
//! ```
//! // Example 1 of the paper: n = 8, x = 22 → y = 0b00001011.
//! assert_eq!(qda_arith::recip_intdiv(8, 22), 0b0000_1011);
//!
//! let src = qda_arith::intdiv_verilog(4);
//! let module = qda_verilog::parse_module(&src)?;
//! let aig = qda_verilog::elaborate(&module)?;
//! for x in 0..16u64 {
//!     assert_eq!(aig.eval(x), qda_arith::recip_intdiv(4, x));
//! }
//! # Ok::<(), qda_verilog::VerilogError>(())
//! ```

pub mod fixed;
pub mod gen;
pub mod qnewton;
pub mod recip;
pub mod resdiv;

pub use gen::{intdiv_verilog, newton_verilog};
pub use qnewton::qnewton_circuit;
pub use recip::{newton_iterations, recip_intdiv, recip_newton};
pub use resdiv::resdiv_circuit;
