//! Unsigned `Q3.w` fixed-point arithmetic (paper §III-2).
//!
//! The paper's format `Q3.w` has 3 integer bits and `w` fractional bits.
//! All quantities in the Newton recurrence for `1/x` with `x > 0` are
//! non-negative and below 4, so an unsigned interpretation is sufficient
//! (the paper's two's-complement signing never kicks in for this input
//! range); raw values are stored in `u128`, which limits the software
//! model to `w ≤ 60` — far beyond anything simulated exhaustively.

/// An unsigned fixed-point number with 3 integer bits and `frac_bits`
/// fractional bits.
///
/// # Example
///
/// ```
/// use qda_arith::fixed::Fixed;
///
/// let a = Fixed::from_ratio(1, 2, 8); // 0.5 in Q3.8
/// let b = Fixed::from_ratio(3, 2, 8); // 1.5
/// assert_eq!(a.mul_trunc(b, 8).to_f64(), 0.75);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Fixed {
    raw: u128,
    frac_bits: u32,
}

impl Fixed {
    /// Builds from a raw integer (`value = raw / 2^frac_bits`).
    ///
    /// # Panics
    ///
    /// Panics if `frac_bits > 60` or the value exceeds the `Q3.w` range.
    pub fn from_raw(raw: u128, frac_bits: u32) -> Self {
        assert!(frac_bits <= 60, "fixed-point model limited to 60 bits");
        assert!(raw >> (frac_bits + 3) == 0, "value exceeds Q3.{frac_bits}");
        Self { raw, frac_bits }
    }

    /// Builds the closest representation of `num / den`.
    ///
    /// # Panics
    ///
    /// Panics if `den == 0` or the quotient exceeds the format.
    pub fn from_ratio(num: u128, den: u128, frac_bits: u32) -> Self {
        assert!(den != 0, "zero denominator");
        Self::from_raw((num << frac_bits) / den, frac_bits)
    }

    /// Raw integer value.
    pub fn raw(&self) -> u128 {
        self.raw
    }

    /// Fractional bit count `w`.
    pub fn frac_bits(&self) -> u32 {
        self.frac_bits
    }

    /// Conversion to `f64` (for accuracy tests only).
    pub fn to_f64(&self) -> f64 {
        self.raw as f64 / (1u128 << self.frac_bits) as f64
    }

    /// Addition (same format). Wraps modulo `2^(w+3)` like the hardware.
    ///
    /// # Panics
    ///
    /// Panics on format mismatch.
    pub fn wrapping_add(self, rhs: Fixed) -> Fixed {
        assert_eq!(self.frac_bits, rhs.frac_bits, "format mismatch");
        let mask = (1u128 << (self.frac_bits + 3)) - 1;
        Fixed {
            raw: (self.raw + rhs.raw) & mask,
            frac_bits: self.frac_bits,
        }
    }

    /// Subtraction (same format), wrapping.
    ///
    /// # Panics
    ///
    /// Panics on format mismatch.
    pub fn wrapping_sub(self, rhs: Fixed) -> Fixed {
        assert_eq!(self.frac_bits, rhs.frac_bits, "format mismatch");
        let modulus = 1u128 << (self.frac_bits + 3);
        Fixed {
            raw: (self.raw + modulus - rhs.raw) % modulus,
            frac_bits: self.frac_bits,
        }
    }

    /// The paper's `u ∗w v`: multiply, truncate the 3 most significant
    /// integer bits and the surplus fractional bits, yielding a `Q3.w`
    /// result.
    pub fn mul_trunc(self, rhs: Fixed, w: u32) -> Fixed {
        let full_frac = self.frac_bits + rhs.frac_bits;
        assert!(w <= full_frac, "cannot gain precision by truncation");
        let shifted = (self.raw * rhs.raw) >> (full_frac - w);
        let mask = (1u128 << (w + 3)) - 1;
        Fixed {
            raw: shifted & mask,
            frac_bits: w,
        }
    }

    /// Widens (or narrows) to `w` fractional bits, truncating low bits when
    /// narrowing.
    pub fn with_frac_bits(self, w: u32) -> Fixed {
        let raw = if w >= self.frac_bits {
            self.raw << (w - self.frac_bits)
        } else {
            self.raw >> (self.frac_bits - w)
        };
        Fixed::from_raw(raw & ((1u128 << (w + 3)) - 1), w)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ratio_and_f64_round_trip() {
        let x = Fixed::from_ratio(48, 17, 20);
        assert!((x.to_f64() - 48.0 / 17.0).abs() < 1e-5);
    }

    #[test]
    fn add_sub_wrap() {
        let a = Fixed::from_ratio(7, 2, 8); // 3.5
        let b = Fixed::from_ratio(1, 1, 8); // 1.0
        assert_eq!(a.wrapping_add(b).to_f64(), 4.5);
        let c = b.wrapping_sub(a); // 1.0 - 3.5 mod 8 = 5.5
        assert_eq!(c.to_f64(), 5.5);
    }

    #[test]
    fn mul_trunc_matches_real_product() {
        let a = Fixed::from_ratio(3, 2, 10);
        let b = Fixed::from_ratio(5, 4, 10);
        let p = a.mul_trunc(b, 10);
        assert!((p.to_f64() - 1.875).abs() < 1e-2);
    }

    #[test]
    fn widening_preserves_value() {
        let a = Fixed::from_ratio(11, 8, 6);
        let w = a.with_frac_bits(12);
        assert_eq!(w.to_f64(), a.to_f64());
        let n = w.with_frac_bits(6);
        assert_eq!(n, a);
    }

    #[test]
    #[should_panic(expected = "exceeds")]
    fn rejects_overflow() {
        let _ = Fixed::from_ratio(9, 1, 8); // 9.0 does not fit Q3.8
    }
}
