//! Golden software models of the reciprocal designs (paper §III).
//!
//! Both compute the `n`-bit fraction `y = (0.y₁…yₙ)₂ ≈ 1/x` for an `n`-bit
//! unsigned input `x ≥ 1`:
//!
//! * [`recip_intdiv`] — the INTDIV design: `y` = low `n` bits of the
//!   `(n+1)`-bit integer division `2ⁿ / x`;
//! * [`recip_newton`] — the NEWTON design: normalize to `[1/2, 1)`,
//!   Newton–Raphson in `Q3.2n` fixed point, denormalize.
//!
//! Every synthesized circuit in the workspace is equivalence-checked
//! against these models.

use crate::fixed::Fixed;

/// Number of Newton iterations for target precision `n` bits.
///
/// The paper uses `I = ⌈log₂((P+1)/log₂ 17)⌉` with signed fixed point and
/// the minimax initial value (*relative* error ≤ 1/17, i.e. absolute
/// overshoot up to 2/17). Our implementation stays *unsigned* by biasing
/// the initial value down by 1/8 > 2/17 (see [`recip_newton`]), so the
/// recurrence converges from below; the wider initial error (< 1/4)
/// costs one extra iteration relative to the paper's count.
pub fn newton_iterations(n: usize) -> usize {
    let p = n as f64;
    ((p + 1.0) / 2.0).log2().ceil().max(1.0) as usize
}

/// The INTDIV(n) golden model: `y` = low `n` bits of `⌊2ⁿ/x⌋`.
///
/// For `x = 0` the hardware divider saturates the quotient to all ones
/// (documented in [`qda_verilog::words::divmod`]); the model matches.
///
/// # Panics
///
/// Panics if `n > 60` or `x ≥ 2ⁿ`.
///
/// # Example
///
/// ```
/// // Example 1 of the paper: n = 8, x = 22 → y = 0b00001011.
/// assert_eq!(qda_arith::recip_intdiv(8, 22), 0b0000_1011);
/// ```
pub fn recip_intdiv(n: usize, x: u64) -> u64 {
    assert!(n <= 60, "model limited to 60 bits");
    assert!(x < (1u64 << n), "input exceeds {n} bits");
    let mask = (1u64 << n) - 1;
    if x == 0 {
        return mask;
    }
    ((1u64 << n) / x) & mask
}

/// The NEWTON(n) golden model, mirroring the generated Verilog bit-exactly:
/// normalization by the leading-one position, `I` Newton iterations in
/// `Q3.2n`, denormalization, and extraction of the `n` most significant
/// fractional bits.
///
/// # Panics
///
/// Panics if `n > 28` (raw products need `4n + 6 ≤ 128` bits, and the model
/// exists to validate exhaustively-simulated small instances) or `x ≥ 2ⁿ`.
pub fn recip_newton(n: usize, x: u64) -> u64 {
    assert!(n <= 28, "newton model limited to 28 bits");
    assert!(x < (1u64 << n), "input exceeds {n} bits");
    let mask = (1u64 << n) - 1;
    if x == 0 {
        return 0;
    }
    let n32 = n as u32;
    let w = 2 * n32; // working precision (fraction bits)
                     // Normalize: k = MSB index, x' = x / 2^(k+1) ∈ [1/2, 1).
    let k = 63 - x.leading_zeros();
    let e = k + 1;
    // x' in Q3.n: raw = x << (n - k - 1).
    let xp_n = Fixed::from_raw((x as u128) << (n32 - k - 1), n32);
    let xp = xp_n.with_frac_bits(w);
    // x0 = 48/17 − (32/17) ∗2n x' − 1/8. The bias keeps x0 strictly below
    // 1/x' (the minimax line overshoots by up to 2/17 absolute), so every
    // `1 − x'·xᵢ` stays non-negative and the whole recurrence runs in
    // unsigned arithmetic.
    let c1 = Fixed::from_ratio(48, 17, w);
    let c2 = Fixed::from_ratio(32, 17, n32);
    let bias = Fixed::from_ratio(1, 8, w);
    let mut xi = c1.wrapping_sub(c2.mul_trunc(xp_n, w)).wrapping_sub(bias);
    // Newton iterations: x ← x + x ∗ (1 − x' ∗ x).
    let one = Fixed::from_ratio(1, 1, w);
    for _ in 0..newton_iterations(n) {
        let t = xp.mul_trunc(xi, w);
        let d = one.wrapping_sub(t);
        let u = xi.mul_trunc(d, w);
        xi = xi.wrapping_add(u);
    }
    // Denormalize: y' = x_I >> e; y = top n fractional bits.
    let yp = xi.raw() >> e;
    ((yp >> n) as u64) & mask
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_example_1() {
        // 1/22 = 0.045…; Verilog integer division gives 0.04296875.
        let y = recip_intdiv(8, 22);
        assert_eq!(y, 0b0000_1011);
        let value = y as f64 / 256.0;
        assert!((value - 0.04296875).abs() < 1e-12);
    }

    #[test]
    fn intdiv_edge_cases() {
        // x = 1: 2^n / 1 = 2^n, MSB dropped → 0.
        assert_eq!(recip_intdiv(8, 1), 0);
        // x = 2: 0.5.
        assert_eq!(recip_intdiv(8, 2), 128);
        // x = 2^n − 1: smallest nonzero reciprocal → 1.
        assert_eq!(recip_intdiv(8, 255), 1);
        // x = 0 saturates.
        assert_eq!(recip_intdiv(8, 0), 255);
    }

    #[test]
    fn iteration_count_grows_with_precision() {
        assert_eq!(newton_iterations(8), 3);
        assert!(newton_iterations(16) >= newton_iterations(8));
        assert!(newton_iterations(64) >= newton_iterations(32));
    }

    #[test]
    fn newton_matches_true_reciprocal_closely() {
        for n in [6usize, 8, 10] {
            for x in 1..(1u64 << n) {
                let y = recip_newton(n, x);
                let approx = y as f64 / (1u64 << n) as f64;
                let truth = 1.0 / x as f64;
                // The representable fraction is in [0, 1); for x = 1 the
                // true value 1.0 is unrepresentable and wraps toward
                // 1 − 2^−n or 0.
                if x == 1 {
                    continue;
                }
                let err = (approx - truth).abs();
                assert!(
                    err <= 4.0 / (1u64 << n) as f64,
                    "n={n} x={x} y={y} approx={approx} truth={truth}"
                );
            }
        }
    }

    #[test]
    fn newton_and_intdiv_agree_within_rounding() {
        for n in [6usize, 8] {
            let mut close = 0usize;
            let total = (1u64 << n) - 2;
            for x in 2..(1u64 << n) {
                let yi = recip_intdiv(n, x) as i64;
                let yn = recip_newton(n, x) as i64;
                if (yi - yn).abs() <= 2 {
                    close += 1;
                }
            }
            // The designs approximate the same function; allow a small
            // number of larger rounding deviations.
            assert!(
                close as f64 >= 0.95 * total as f64,
                "n={n}: only {close}/{total} within 2 ulp"
            );
        }
    }
}
