//! QNEWTON: the hand-crafted reversible Newton–Raphson reciprocal
//! baseline (paper §V, Table I).
//!
//! Mirrors the paper's description: "bitshifting the inputs into the range
//! [0.5, 1), implementing Newton iterations with the Cuccaro adder,
//! text book multiplication, and then finally bit shifting the values
//! again to provide the desired answer."
//!
//! Construction outline:
//!
//! 1. **Normalize** — a one-hot leading-one detector (one MCT per bit)
//!    drives shift (`s = n−1−k`) and exponent (`e = k+1`) registers; a
//!    controlled barrel rotator (Fredkin gates) builds `x' ∈ [1/2, 1)` in
//!    `Q3.2n`;
//! 2. **Iterate** — `x₀ = 48/17 − 32/17·x'`, then
//!    `xᵢ₊₁ = xᵢ + xᵢ·(1 − x'·xᵢ)` with shift-and-add multipliers and
//!    Cuccaro adders; multiplier products are uncomputed after use;
//! 3. **Denormalize** — a second controlled barrel rotator shifts by `e`
//!    and the answer bits are copied out.
//!
//! Intermediate `xᵢ` registers are kept as garbage (the chain would need
//! its full history to uncompute); inputs are preserved. The qubit count
//! is the allocator's high-water mark.

use crate::recip::newton_iterations;
use qda_rev::blocks::{copy_register, cuccaro_add, cuccaro_sub, load_constant_bits, multiply_add};
use qda_rev::circuit::{Circuit, LineAllocator};
use qda_rev::gate::{Control, Gate};

/// A built QNEWTON instance.
#[derive(Clone, Debug)]
pub struct QNewtonCircuit {
    /// The circuit.
    pub circuit: Circuit,
    /// Input lines carrying `x` (LSB first), preserved.
    pub input_lines: Vec<usize>,
    /// Output lines carrying `y ≈ 2ⁿ/x` fraction bits (LSB first).
    pub output_lines: Vec<usize>,
}

/// `⌊num·2^frac/den⌋` as LSB-first bits, via streaming long division —
/// constants stay exact at any width (QNEWTON(64) needs 131-bit values).
fn ratio_bits(num: u64, den: u64, frac: usize) -> Vec<bool> {
    let num_bits = 64 - num.leading_zeros() as usize;
    let mut msb_first = Vec::with_capacity(num_bits + frac);
    let mut rem: u64 = 0;
    for i in 0..(num_bits + frac) {
        let bit = if i < num_bits {
            (num >> (num_bits - 1 - i)) & 1
        } else {
            0
        };
        rem = rem * 2 + bit;
        if rem >= den {
            rem -= den;
            msb_first.push(true);
        } else {
            msb_first.push(false);
        }
    }
    msb_first.reverse(); // now LSB first
    msb_first
}

/// Subtracts `2^exp` from an LSB-first bit vector in place (borrow ripple).
///
/// # Panics
///
/// Panics if the value is smaller than `2^exp`.
fn sub_power_of_two(bits: &mut [bool], exp: usize) {
    let mut i = exp;
    loop {
        if i >= bits.len() {
            panic!("underflow in constant bias");
        }
        if bits[i] {
            bits[i] = false;
            break;
        }
        bits[i] = true;
        i += 1;
    }
}

/// Controlled swap (Fredkin): swaps `a` and `b` iff `c` is 1.
fn fredkin(circuit: &mut Circuit, c: usize, a: usize, b: usize) {
    circuit.cnot(b, a);
    circuit.toffoli(c, a, b);
    circuit.cnot(b, a);
}

/// Rotates `reg` left by `k` positions when `control` is 1.
fn controlled_rotate_left(circuit: &mut Circuit, reg: &[usize], k: usize, control: usize) {
    let m = reg.len();
    let k = k % m;
    if k == 0 {
        return;
    }
    let mut order: Vec<usize> = (0..m).collect();
    order.rotate_left(m - k);
    let mut visited = vec![false; m];
    for start in 0..m {
        if visited[start] {
            continue;
        }
        let mut cycle = vec![start];
        let mut cur = order[start];
        while cur != start {
            cycle.push(cur);
            cur = order[cur];
        }
        for &c in &cycle {
            visited[c] = true;
        }
        for w in cycle.windows(2) {
            fredkin(circuit, control, reg[w[0]], reg[w[1]]);
        }
    }
}

/// Builds the QNEWTON reciprocal circuit for `n`-bit inputs.
///
/// # Panics
///
/// Panics if `n < 4`.
///
/// # Example
///
/// ```
/// use qda_arith::qnewton_circuit;
/// use qda_rev::state::BitState;
///
/// let q = qnewton_circuit(4);
/// let mut s = BitState::zeros(q.circuit.num_lines());
/// s.write_register(&q.input_lines, 2);
/// q.circuit.apply(&mut s);
/// // 1/2 = 0.1000₂; converging from below may floor one ulp short.
/// let y = s.read_register(&q.output_lines);
/// assert!(y == 0b1000 || y == 0b0111);
/// ```
pub fn qnewton_circuit(n: usize) -> QNewtonCircuit {
    assert!(n >= 4, "n must be at least 4");
    let w = 2 * n + 3; // Q3.2n raw width
    let eb = usize::BITS as usize - n.leading_zeros() as usize;
    let iters = newton_iterations(n);
    let mut circuit = Circuit::new(n);
    let mut alloc = LineAllocator::new(n);
    let x_lines: Vec<usize> = (0..n).collect();
    let grow = |circuit: &mut Circuit, alloc: &LineAllocator| {
        circuit.ensure_lines(alloc.high_water());
    };

    // 1. Leading-one detection: one-hot h_k = x[k] & !x[k+1..].
    let h_lines = alloc.alloc_many(n);
    grow(&mut circuit, &alloc);
    for k in 0..n {
        let mut controls = vec![Control::positive(x_lines[k])];
        for &x in &x_lines[(k + 1)..n] {
            controls.push(Control::negative(x));
        }
        circuit.add_gate(Gate::mct(controls, h_lines[k]));
    }
    // Shift register s = n−1−k and exponent register e = k+1.
    let s_lines = alloc.alloc_many(eb);
    let e_lines = alloc.alloc_many(eb);
    grow(&mut circuit, &alloc);
    for (k, &h) in h_lines.iter().enumerate().take(n) {
        let s_val = n - 1 - k;
        let e_val = k + 1;
        for j in 0..eb {
            if (s_val >> j) & 1 == 1 {
                circuit.cnot(h, s_lines[j]);
            }
            if (e_val >> j) & 1 == 1 {
                circuit.cnot(h, e_lines[j]);
            }
        }
    }
    // Uncompute the one-hot detector; recycle its lines.
    for k in (0..n).rev() {
        let mut controls = vec![Control::positive(x_lines[k])];
        for &x in &x_lines[(k + 1)..n] {
            controls.push(Control::negative(x));
        }
        circuit.add_gate(Gate::mct(controls, h_lines[k]));
    }
    alloc.release_many(h_lines);

    // 2. Normalization rotator: copy x at offset n in a 3n-line register,
    //    rotate left by s ⇒ x' in Q3.2n on the low w lines (top 3 of the
    //    w always zero because x' < 1, so borrow 3 clean lines).
    let wide_len = 3 * n;
    let wide = alloc.alloc_many(wide_len);
    let zeros3 = alloc.alloc_many(3);
    grow(&mut circuit, &alloc);
    for (i, &x) in x_lines.iter().enumerate() {
        circuit.cnot(x, wide[n + i]);
    }
    for (j, &s) in s_lines.iter().enumerate() {
        controlled_rotate_left(&mut circuit, &wide, 1 << j, s);
    }
    // x' register (Q3.2n): 2n value lines + 3 zero top lines.
    let xp: Vec<usize> = wide[..2 * n].iter().chain(&zeros3).copied().collect();

    // Shared adder ancilla.
    let adder_anc = alloc.alloc();

    // 3. x0 = C1 − C2·x'.
    //    C2·x' computed as (C2 in Q3.n) × (x' in Q3.2n) → 3n frac bits;
    //    slicing off the low n bits yields the Q3.2n truncation.
    let c2_bits = ratio_bits(32, 17, n);
    // 48/17 − 1/8: the bias keeps x0 below 1/x' (unsigned-safe recurrence).
    let c1_bits = {
        let mut bits = ratio_bits(48, 17, 2 * n);
        sub_power_of_two(&mut bits, 2 * n - 3);
        bits
    };
    let c2_reg = alloc.alloc_many(n + 3);
    let prod0 = alloc.alloc_many(w + n + 3);
    let x0_reg = alloc.alloc_many(w);
    grow(&mut circuit, &alloc);
    load_constant_bits(&mut circuit, &c2_reg, &c2_bits);
    multiply_add(&mut circuit, &c2_reg, &xp, &prod0, adder_anc);
    load_constant_bits(&mut circuit, &x0_reg, &c1_bits);
    let m0_slice: Vec<usize> = prod0[n..n + w].to_vec();
    cuccaro_sub(&mut circuit, &m0_slice, &x0_reg, adder_anc, None, None);
    // Uncompute the product and constant.
    {
        let mut inv = Circuit::new(circuit.num_lines());
        multiply_add(&mut inv, &c2_reg, &xp, &prod0, adder_anc);
        let inv = inv.inverse();
        circuit.extend_from(&inv);
    }
    load_constant_bits(&mut circuit, &c2_reg, &c2_bits);
    alloc.release_many(prod0);
    alloc.release_many(c2_reg);

    // 4. Newton iterations.
    let one_bits: Vec<bool> = (0..w).map(|i| i == 2 * n).collect();
    let mut xi_reg = x0_reg;
    for _ in 0..iters {
        let t_full = alloc.alloc_many(2 * w);
        let d_reg = alloc.alloc_many(w);
        let u_full = alloc.alloc_many(2 * w);
        let x_next = alloc.alloc_many(w);
        grow(&mut circuit, &alloc);
        // t = x'·xᵢ (Q3.2n truncation = bits 2n… of the full product).
        multiply_add(&mut circuit, &xp, &xi_reg, &t_full, adder_anc);
        let t_slice: Vec<usize> = t_full[2 * n..2 * n + w].to_vec();
        // d = 1 − t.
        load_constant_bits(&mut circuit, &d_reg, &one_bits);
        cuccaro_sub(&mut circuit, &t_slice, &d_reg, adder_anc, None, None);
        // u = xᵢ·d.
        multiply_add(&mut circuit, &xi_reg, &d_reg, &u_full, adder_anc);
        let u_slice: Vec<usize> = u_full[2 * n..2 * n + w].to_vec();
        // x_{i+1} = xᵢ + u.
        copy_register(&mut circuit, &xi_reg, &x_next);
        cuccaro_add(&mut circuit, &u_slice, &x_next, adder_anc, None, None);
        // Uncompute u, d, t (in reverse order of their data dependencies).
        {
            let mut inv = Circuit::new(circuit.num_lines());
            multiply_add(&mut inv, &xi_reg, &d_reg, &u_full, adder_anc);
            circuit.extend_from(&inv.inverse());
        }
        {
            let mut inv = Circuit::new(circuit.num_lines());
            load_constant_bits(&mut inv, &d_reg, &one_bits);
            cuccaro_sub(&mut inv, &t_slice, &d_reg, adder_anc, None, None);
            circuit.extend_from(&inv.inverse());
        }
        {
            let mut inv = Circuit::new(circuit.num_lines());
            multiply_add(&mut inv, &xp, &xi_reg, &t_full, adder_anc);
            circuit.extend_from(&inv.inverse());
        }
        alloc.release_many(t_full);
        alloc.release_many(d_reg);
        alloc.release_many(u_full);
        // xᵢ stays live as garbage history (required to uncompute nothing
        // further; documented trade-off).
        xi_reg = x_next;
    }

    // 5. Denormalize: copy x_I at offset n of a fresh rotator and rotate
    //    right by e. Position p then holds x_I bit (p + e − n), so the
    //    wanted bits y_j = x_I bit (n + j + e) sit at the *fixed* positions
    //    2n + j regardless of e.
    let denorm = alloc.alloc_many(w + n);
    grow(&mut circuit, &alloc);
    for (i, &l) in xi_reg.iter().enumerate() {
        circuit.cnot(l, denorm[n + i]);
    }
    for (j, &e) in e_lines.iter().enumerate() {
        // Rotate right by 2^j == rotate left by len − 2^j.
        let len = denorm.len();
        controlled_rotate_left(&mut circuit, &denorm, len - (1 << j) % len, e);
    }
    let y_lines = alloc.alloc_many(n);
    grow(&mut circuit, &alloc);
    for j in 0..n {
        circuit.cnot(denorm[2 * n + j], y_lines[j]);
    }
    // Uncompute the denormalization rotator.
    for (j, &e) in e_lines.iter().enumerate().rev() {
        let len = denorm.len();
        controlled_rotate_left(&mut circuit, &denorm, (1 << j) % len, e);
    }
    for (i, &l) in xi_reg.iter().enumerate().rev() {
        circuit.cnot(l, denorm[n + i]);
    }
    alloc.release_many(denorm);

    circuit.ensure_lines(alloc.high_water());
    QNewtonCircuit {
        circuit,
        input_lines: x_lines,
        output_lines: y_lines,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::recip::recip_newton;
    use qda_rev::state::BitState;

    fn run(q: &QNewtonCircuit, x: u64) -> u64 {
        let mut s = BitState::zeros(q.circuit.num_lines());
        s.write_register(&q.input_lines, x);
        q.circuit.apply(&mut s);
        let y = s.read_register(&q.output_lines);
        assert_eq!(s.read_register(&q.input_lines), x, "input preserved");
        y
    }

    #[test]
    fn matches_newton_model_exhaustively() {
        for n in [4usize, 5] {
            let q = qnewton_circuit(n);
            for x in 1..(1u64 << n) {
                assert_eq!(run(&q, x), recip_newton(n, x), "n={n} x={x}");
            }
        }
    }

    #[test]
    fn powers_of_two_within_one_ulp() {
        // Converging from below, x_I sits just under 1/x', so exact powers
        // of two may floor to one ulp below the exact reciprocal.
        let n = 6;
        let q = qnewton_circuit(n);
        for k in 1..n {
            let x = 1u64 << k;
            let y = run(&q, x) as i64;
            let exact = 1i64 << (n - k);
            assert!(
                (exact - y) <= 1 && exact >= y,
                "x=2^{k}: y={y} exact={exact}"
            );
        }
    }

    #[test]
    fn accuracy_close_to_true_reciprocal() {
        let n = 6;
        let q = qnewton_circuit(n);
        for x in 2..(1u64 << n) {
            let y = run(&q, x);
            let approx = y as f64 / 64.0;
            let truth = 1.0 / x as f64;
            assert!(
                (approx - truth).abs() <= 4.0 / 64.0,
                "x={x} y={y} approx={approx}"
            );
        }
    }

    #[test]
    fn fredkin_swaps_conditionally() {
        let mut c = Circuit::new(3);
        fredkin(&mut c, 0, 1, 2);
        assert_eq!(c.simulate_u64(0b011), 0b101); // c=1: swap
        assert_eq!(c.simulate_u64(0b010), 0b010); // c=0: identity
    }

    #[test]
    fn controlled_rotation() {
        let mut c = Circuit::new(5);
        controlled_rotate_left(&mut c, &[0, 1, 2, 3], 1, 4);
        // control off: unchanged.
        assert_eq!(c.simulate_u64(0b0_0011), 0b0_0011);
        // control on: 0b0011 rotated left 1 = 0b0110.
        assert_eq!(c.simulate_u64(0b1_0011), 0b1_0110);
    }

    #[test]
    fn qubit_count_scales_linearly() {
        let q4 = qnewton_circuit(4).circuit.num_lines();
        let q8 = qnewton_circuit(8).circuit.num_lines();
        let q16 = qnewton_circuit(16).circuit.num_lines();
        assert!(q8 < 2 * q4 + 40);
        assert!(q16 < 2 * q8 + 60);
    }
}
