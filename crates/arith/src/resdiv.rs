//! RESDIV: the hand-crafted restoring-division baseline (paper §V,
//! Table I), after Thapliyal et al. \[24\].
//!
//! An `N`-bit restoring divider computes quotient `q` and remainder `r`
//! with `a = q·b + r` from registers A (dividend), B (divisor) and an
//! `N+1`-line remainder window, using Cuccaro adders for the iterated
//! conditional subtraction — roughly `3N` qubits. The paper computes the
//! `n`-bit reciprocal with the `N = 2n` instance (`a = 2ⁿ`, `b = x`),
//! giving the `6n` qubit counts of Table I.
//!
//! Reversible structure per iteration (MSB to LSB):
//!
//! 1. the remainder window shifts left by relabeling, absorbing the next
//!    dividend line and releasing its (always zero) top line,
//! 2. `R ← R − B` with the borrow recorded on the released line,
//! 3. a borrow-controlled `R ← R + B` restores when the subtraction
//!    overshot,
//! 4. the borrow line, inverted, *is* the quotient bit.

use qda_rev::blocks::{cuccaro_add, cuccaro_sub};
use qda_rev::circuit::Circuit;
use qda_rev::gate::Control;

/// A built RESDIV instance.
#[derive(Clone, Debug)]
pub struct ResdivCircuit {
    /// The circuit.
    pub circuit: Circuit,
    /// Lines carrying the divisor input `b` (LSB first), preserved.
    pub divisor_lines: Vec<usize>,
    /// Lines carrying the dividend input `a` (LSB first; consumed).
    pub dividend_lines: Vec<usize>,
    /// Lines carrying the quotient after execution (LSB first).
    pub quotient_lines: Vec<usize>,
    /// Lines carrying the remainder after execution (LSB first).
    pub remainder_lines: Vec<usize>,
}

/// Builds an `N`-bit reversible restoring divider.
///
/// Inputs: dividend `a` on [`ResdivCircuit::dividend_lines`], divisor `b`
/// on [`ResdivCircuit::divisor_lines`]; all other lines start at zero.
/// Outputs: `q = ⌊a/b⌋` and `r = a mod b`. For `b = 0` the quotient reads
/// all ones and the remainder equals `a` (restoring division's natural
/// saturation).
///
/// # Panics
///
/// Panics if `bits == 0`.
///
/// # Example
///
/// ```
/// use qda_arith::resdiv_circuit;
/// use qda_rev::state::BitState;
///
/// let d = resdiv_circuit(4);
/// let mut s = BitState::zeros(d.circuit.num_lines());
/// s.write_register(&d.dividend_lines, 13);
/// s.write_register(&d.divisor_lines, 3);
/// d.circuit.apply(&mut s);
/// assert_eq!(s.read_register(&d.quotient_lines), 4);
/// assert_eq!(s.read_register(&d.remainder_lines), 1);
/// ```
pub fn resdiv_circuit(bits: usize) -> ResdivCircuit {
    assert!(bits > 0, "divider width must be positive");
    let n = bits;
    // Line layout:
    //   0 .. n          : B (divisor) + one permanent zero extension line
    //   n+1 .. 2n+1     : initial remainder window (N+1 zero lines)
    //   2n+2 .. 3n+2    : A (dividend)
    //   3n+2            : adder ancilla (last line)
    let b_lines: Vec<usize> = (0..=n).collect(); // b + zero top
    let mut r_window: Vec<usize> = ((n + 1)..(2 * n + 2)).collect();
    let a_lines: Vec<usize> = ((2 * n + 2)..(3 * n + 2)).collect();
    let ancilla = 3 * n + 2;
    let total = 3 * n + 3;
    let mut circuit = Circuit::new(total);
    let mut quotient_lines = vec![0usize; n];
    for i in (0..n).rev() {
        // Shift: prepend the next dividend line, release the zero top.
        let released = r_window.pop().expect("window is never empty");
        r_window.insert(0, a_lines[i]);
        // Trial subtraction with borrow on the released line.
        cuccaro_sub(
            &mut circuit,
            &b_lines,
            &r_window,
            ancilla,
            Some(released),
            None,
        );
        // Restore when the subtraction went negative.
        cuccaro_add(
            &mut circuit,
            &b_lines,
            &r_window,
            ancilla,
            None,
            Some(Control::positive(released)),
        );
        // Quotient bit = ¬borrow.
        circuit.not(released);
        quotient_lines[i] = released;
    }
    ResdivCircuit {
        circuit,
        divisor_lines: (0..n).collect(),
        dividend_lines: a_lines,
        quotient_lines,
        remainder_lines: r_window,
    }
}

/// Builds the reciprocal instance of Table I: a `2n`-bit RESDIV with
/// `a = 2ⁿ` loaded by the circuit itself, computing `q = ⌊2ⁿ/x⌋`; the
/// reciprocal `y` is the low `n` quotient bits.
pub fn resdiv_reciprocal(n: usize) -> ResdivCircuit {
    let mut d = resdiv_circuit(2 * n);
    // Prepend the constant load a = 2^n (one X gate).
    let mut with_load = Circuit::new(d.circuit.num_lines());
    with_load.not(d.dividend_lines[n]);
    with_load.extend_from(&d.circuit);
    d.circuit = with_load;
    // The divisor is x (n bits used; upper half must be zero).
    d
}

#[cfg(test)]
mod tests {
    use super::*;
    use qda_rev::state::BitState;

    fn run(d: &ResdivCircuit, a: u64, b: u64) -> (u64, u64) {
        let mut s = BitState::zeros(d.circuit.num_lines());
        s.write_register(&d.dividend_lines, a);
        s.write_register(&d.divisor_lines, b);
        d.circuit.apply(&mut s);
        (
            s.read_register(&d.quotient_lines),
            s.read_register(&d.remainder_lines),
        )
    }

    #[test]
    fn divides_exhaustively_4bit() {
        let d = resdiv_circuit(4);
        for a in 0..16u64 {
            for b in 1..16u64 {
                let (q, r) = run(&d, a, b);
                assert_eq!(q, a / b, "{a}/{b}");
                assert_eq!(r & 15, a % b, "{a}%{b}");
            }
        }
    }

    #[test]
    fn divisor_preserved_and_identity_check() {
        let d = resdiv_circuit(3);
        for a in 0..8u64 {
            for b in 1..8u64 {
                let mut s = BitState::zeros(d.circuit.num_lines());
                s.write_register(&d.dividend_lines, a);
                s.write_register(&d.divisor_lines, b);
                d.circuit.apply(&mut s);
                assert_eq!(s.read_register(&d.divisor_lines), b);
                let q = s.read_register(&d.quotient_lines);
                let r = s.read_register(&d.remainder_lines);
                assert_eq!(q * b + (r & 7), a, "a = qb + r for {a}/{b}");
            }
        }
    }

    #[test]
    fn zero_divisor_saturates() {
        let d = resdiv_circuit(3);
        let (q, r) = run(&d, 5, 0);
        assert_eq!(q, 7);
        assert_eq!(r & 7, 5);
    }

    #[test]
    fn reciprocal_instance_matches_model() {
        for n in [3usize, 4] {
            let d = resdiv_reciprocal(n);
            for x in 1..(1u64 << n) {
                let mut s = BitState::zeros(d.circuit.num_lines());
                s.write_register(&d.divisor_lines, x);
                d.circuit.apply(&mut s);
                let q = s.read_register(&d.quotient_lines);
                let y = q & ((1 << n) - 1);
                assert_eq!(y, crate::recip::recip_intdiv(n, x), "n={n} x={x}");
            }
        }
    }

    #[test]
    fn qubit_count_is_about_3n() {
        for bits in [8usize, 16, 32] {
            let d = resdiv_circuit(bits);
            assert_eq!(d.circuit.num_lines(), 3 * bits + 3);
        }
        // The Table I instance: 6n + 3.
        let d = resdiv_reciprocal(8);
        assert_eq!(d.circuit.num_lines(), 6 * 8 + 3);
    }

    #[test]
    fn t_count_scales_quadratically() {
        let c8 = resdiv_reciprocal(8).circuit.cost().t_count;
        let c16 = resdiv_reciprocal(16).circuit.cost().t_count;
        let ratio = c16 as f64 / c8 as f64;
        assert!(
            (3.0..5.0).contains(&ratio),
            "expected ~4x growth, got {ratio}"
        );
    }
}
