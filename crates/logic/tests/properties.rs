//! Property-based tests for the core Boolean data structures.

use proptest::prelude::*;
use qda_logic::cube::Cube;
use qda_logic::esop::Esop;
use qda_logic::npn::{apply_transform, npn_canonical};
use qda_logic::tt::TruthTable;

fn arb_tt(n: usize) -> impl Strategy<Value = TruthTable> {
    prop::collection::vec(any::<u64>(), 1usize.max(1 << n.saturating_sub(6)))
        .prop_map(move |words| TruthTable::from_words(n, words))
}

fn arb_cube(n: usize) -> impl Strategy<Value = Cube> {
    (any::<u64>(), any::<u64>()).prop_map(move |(care, pol)| {
        let mask = (1u64 << n) - 1;
        Cube::from_masks(care & mask, pol)
    })
}

proptest! {
    #[test]
    fn tt_double_complement_is_identity(tt in arb_tt(7)) {
        prop_assert_eq!(&!&!&tt, &tt);
    }

    #[test]
    fn tt_xor_self_is_zero(tt in arb_tt(7)) {
        prop_assert!((&tt ^ &tt).is_zero());
    }

    #[test]
    fn tt_de_morgan(a in arb_tt(6), b in arb_tt(6)) {
        let lhs = !&(&a & &b);
        let rhs = &!&a | &!&b;
        prop_assert_eq!(lhs, rhs);
    }

    #[test]
    fn tt_cofactor_shannon_expansion(tt in arb_tt(6), var in 0usize..6) {
        // f = (!x & f0) | (x & f1)
        let f0 = tt.cofactor(var, false);
        let f1 = tt.cofactor(var, true);
        let x = TruthTable::var(6, var);
        let rebuilt = &(&!&x & &f0) | &(&x & &f1);
        prop_assert_eq!(rebuilt, tt);
    }

    #[test]
    fn cube_distance_is_metric(a in arb_cube(8), b in arb_cube(8), c in arb_cube(8)) {
        prop_assert_eq!(a.distance(&a), 0);
        prop_assert_eq!(a.distance(&b), b.distance(&a));
        prop_assert!(a.distance(&c) <= a.distance(&b) + b.distance(&c));
    }

    #[test]
    fn cube_merge_distance_one_preserves_function(a in arb_cube(6), b in arb_cube(6)) {
        if let Some(m) = a.merge_distance_one(&b) {
            for x in 0..64u64 {
                prop_assert_eq!(m.eval(x), a.eval(x) ^ b.eval(x));
            }
        }
    }

    #[test]
    fn cube_exorlink2_preserves_function(a in arb_cube(6), b in arb_cube(6), which in 0usize..2) {
        if let Some((a1, b1)) = a.exorlink2(&b, which) {
            for x in 0..64u64 {
                prop_assert_eq!(
                    a1.eval(x) ^ b1.eval(x),
                    a.eval(x) ^ b.eval(x)
                );
            }
        }
    }

    #[test]
    fn esop_reduce_preserves_function(tt in arb_tt(6)) {
        let mut esop = Esop::from_truth_table(&tt);
        esop.reduce();
        prop_assert_eq!(esop.to_truth_table(), tt);
    }

    #[test]
    fn npn_canonical_is_class_invariant(tt in any::<u16>(), flips in 0u8..16, perm_sel in 0usize..24, out in any::<bool>()) {
        // Build a permutation from the selector.
        let mut items = vec![0u8, 1, 2, 3];
        let mut perm = [0u8; 4];
        let mut sel = perm_sel;
        for p in perm.iter_mut() {
            let k = sel % items.len();
            sel /= 4;
            *p = items.remove(k);
        }
        let t = qda_logic::npn::NpnTransform { perm, input_flips: flips, output_flip: out };
        let variant = apply_transform(tt, &t);
        prop_assert_eq!(npn_canonical(tt).0, npn_canonical(variant).0);
    }
}
