//! Integration tests for the persistent worker pool: determinism across
//! warm/cold/serial runs, nesting under caps, and panic recovery — the
//! contracts every sharded engine in the workspace leans on.

use proptest::prelude::*;
use qda_logic::par;
use std::panic::{catch_unwind, AssertUnwindSafe};

/// A job function whose output depends only on the index and the inputs —
/// mixing enough that scheduling bugs (lost, duplicated, or reordered
/// indices) corrupt the checksum instead of cancelling out.
fn mix(seed: u64, i: usize) -> u64 {
    let mut x = seed ^ (i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
    x ^= x >> 30;
    x = x.wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x ^= x >> 27;
    x
}

proptest! {
    /// Warm-pool, cold-equivalent, and forced-serial runs of the same job
    /// list are byte-identical: the pool only ever changes *when* a job
    /// runs, never its result or fold order.
    #[test]
    fn warm_cold_and_serial_runs_are_byte_identical(
        seed in any::<u64>(),
        n in 0usize..200,
    ) {
        let serial = par::with_worker_cap(1, || par::run_indexed(n, |i| mix(seed, i)));
        // First pooled run may initialize (cold) …
        let cold = par::run_indexed(n, |i| mix(seed, i));
        // … later runs reuse the warm pool.
        let warm = par::run_indexed(n, |i| mix(seed, i));
        prop_assert_eq!(&cold, &serial);
        prop_assert_eq!(&warm, &serial);
    }

    /// Every worker cap produces the same results (only the schedule
    /// differs), including caps far above the actual worker count.
    #[test]
    fn every_cap_is_deterministic(seed in any::<u64>(), cap in 1usize..9) {
        let reference = par::with_worker_cap(1, || par::run_indexed(64, |i| mix(seed, i)));
        let capped = par::with_worker_cap(cap, || par::run_indexed(64, |i| mix(seed, i)));
        prop_assert_eq!(capped, reference);
    }
}

/// The DSE shape — an outer race whose jobs each run an inner portfolio —
/// must drain without deadlock at any cap, because each submitter helps
/// with its own job. Loops enough rounds to exercise queue contention.
#[test]
fn nested_pool_use_never_deadlocks() {
    for round in 0..16 {
        for cap in [1, 2, usize::MAX] {
            let out = par::with_worker_cap(cap, || {
                par::run_indexed(3, |outer| {
                    let inner = par::run_indexed(4, move |i| {
                        // Third level: resynthesis under a narrowed cap.
                        par::with_worker_cap(2, || {
                            par::run_indexed(2, move |j| mix(round, outer * 100 + i * 10 + j))
                                .into_iter()
                                .fold(0u64, u64::wrapping_add)
                        })
                    });
                    inner.into_iter().fold(0u64, u64::wrapping_add)
                })
            });
            let expected: Vec<u64> = (0..3)
                .map(|outer| {
                    (0..4)
                        .map(|i| {
                            (0..2)
                                .map(|j| mix(round, outer * 100 + i * 10 + j))
                                .fold(0u64, u64::wrapping_add)
                        })
                        .fold(0u64, u64::wrapping_add)
                })
                .collect();
            assert_eq!(out, expected, "cap {cap}, round {round}");
        }
    }
}

/// A panicking job is re-raised on the submitter and leaves the pool
/// healthy for unrelated follow-up work — nested or not.
#[test]
fn pool_survives_panics_inside_nested_jobs() {
    let caught = catch_unwind(AssertUnwindSafe(|| {
        par::run_indexed(4, |outer| {
            let inner = par::run_indexed(4, |i| {
                assert!(outer * 4 + i != 9, "planted failure");
                i
            });
            inner.len()
        })
    }));
    assert!(caught.is_err(), "the planted panic must propagate");
    let out = par::run_indexed(32, |i| i * i);
    assert_eq!(out, (0..32).map(|i| i * i).collect::<Vec<_>>());
}

/// Steady-state parallel work spawns zero threads: the pool is filled
/// once and reused for every later call, whatever the job mix.
#[test]
fn steady_state_reuses_the_pool_across_call_shapes() {
    let _ = par::run_indexed(8, |i| i); // warm
    let before = par::spawned_threads();
    for n in [1usize, 2, 7, 64, 200] {
        let _ = par::run_indexed(n, |i| mix(0xDEAD_BEEF, i));
        let _ = par::with_worker_cap(2, || par::run_indexed(n, |i| mix(1, i)));
    }
    assert_eq!(
        par::spawned_threads(),
        before,
        "steady-state calls must never spawn"
    );
}
