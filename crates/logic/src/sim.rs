//! Random-simulation utilities shared by semi-canonicalization
//! ("fraig-lite") and equivalence checking.

use crate::aig::Aig;
use rand::{rngs::StdRng, Rng, SeedableRng};

/// A deterministic pattern source producing 64-assignment simulation words.
///
/// # Example
///
/// ```
/// use qda_logic::sim::PatternSource;
///
/// let mut src = PatternSource::new(4, 0xDEADBEEF);
/// let words = src.next_patterns();
/// assert_eq!(words.len(), 4);
/// ```
#[derive(Clone, Debug)]
pub struct PatternSource {
    num_vars: usize,
    rng: StdRng,
}

impl PatternSource {
    /// Creates a source for `num_vars` inputs with a fixed seed
    /// (reproducible runs).
    pub fn new(num_vars: usize, seed: u64) -> Self {
        Self {
            num_vars,
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// Next batch: one random 64-assignment word per input.
    pub fn next_patterns(&mut self) -> Vec<u64> {
        (0..self.num_vars).map(|_| self.rng.gen()).collect()
    }
}

/// Outcome of a (possibly incomplete) equivalence check.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum EquivalenceOutcome {
    /// Proven equivalent by exhaustive enumeration.
    Equivalent,
    /// A distinguishing input assignment was found.
    CounterExample(u64),
    /// No mismatch found within the simulation budget (inconclusive but
    /// high-confidence for randomized checks).
    ProbablyEquivalent {
        /// Number of random input patterns that found no mismatch.
        patterns_tested: u64,
    },
}

impl EquivalenceOutcome {
    /// Whether no counterexample was found.
    pub fn is_ok(&self) -> bool {
        !matches!(self, EquivalenceOutcome::CounterExample(_))
    }
}

/// Checks two AIGs for combinational equivalence.
///
/// Exhaustive when `num_pis ≤ exhaustive_limit`, randomized otherwise
/// (mirrors how the paper uses ABC `cec` to validate every synthesized
/// design). Both AIGs must agree on PI/PO counts.
///
/// # Panics
///
/// Panics if the interfaces disagree.
pub fn check_aig_equivalence(
    a: &Aig,
    b: &Aig,
    exhaustive_limit: usize,
    random_rounds: u64,
) -> EquivalenceOutcome {
    assert_eq!(a.num_pis(), b.num_pis(), "PI count mismatch");
    assert_eq!(a.num_pos(), b.num_pos(), "PO count mismatch");
    let n = a.num_pis();
    if n <= exhaustive_limit {
        for x in 0..(1u64 << n) {
            if a.eval(x) != b.eval(x) {
                return EquivalenceOutcome::CounterExample(x);
            }
        }
        return EquivalenceOutcome::Equivalent;
    }
    let mut src = PatternSource::new(n, 0x5EED_CAFE);
    for _ in 0..random_rounds {
        let patterns = src.next_patterns();
        let va = a.simulate_words(&patterns);
        let vb = b.simulate_words(&patterns);
        for (j, (pa, pb)) in a.pos().iter().zip(b.pos().iter()).enumerate() {
            let wa = Aig::lit_value(&va, *pa);
            let wb = Aig::lit_value(&vb, *pb);
            if wa != wb {
                // Reconstruct one distinguishing assignment.
                let bit = (wa ^ wb).trailing_zeros() as u64;
                let mut x = 0u64;
                for (i, w) in patterns.iter().enumerate() {
                    if (w >> bit) & 1 == 1 {
                        x |= 1 << i;
                    }
                }
                let _ = j;
                return EquivalenceOutcome::CounterExample(x);
            }
        }
    }
    EquivalenceOutcome::ProbablyEquivalent {
        patterns_tested: random_rounds * 64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::aig::Aig;

    fn xor_chain(n: usize) -> Aig {
        let mut aig = Aig::new(n);
        let mut acc = aig.pi(0);
        for i in 1..n {
            let p = aig.pi(i);
            acc = aig.xor(acc, p);
        }
        aig.add_po(acc);
        aig
    }

    fn xor_tree(n: usize) -> Aig {
        let mut aig = Aig::new(n);
        let mut lits: Vec<_> = (0..n).map(|i| aig.pi(i)).collect();
        while lits.len() > 1 {
            let mut next = Vec::new();
            for pair in lits.chunks(2) {
                if pair.len() == 2 {
                    let x = aig.xor(pair[0], pair[1]);
                    next.push(x);
                } else {
                    next.push(pair[0]);
                }
            }
            lits = next;
        }
        aig.add_po(lits[0]);
        aig
    }

    #[test]
    fn exhaustive_equivalence_of_restructured_logic() {
        let a = xor_chain(6);
        let b = xor_tree(6);
        assert_eq!(
            check_aig_equivalence(&a, &b, 10, 4),
            EquivalenceOutcome::Equivalent
        );
    }

    #[test]
    fn exhaustive_finds_counterexample() {
        let a = xor_chain(4);
        let mut b = xor_chain(4);
        let p0 = b.pi(0);
        let new_po = {
            let old = b.pos()[0];
            b.and(old, p0)
        };
        b.set_po(0, new_po);
        match check_aig_equivalence(&a, &b, 10, 4) {
            EquivalenceOutcome::CounterExample(x) => {
                assert_ne!(a.eval(x), b.eval(x));
            }
            other => panic!("expected counterexample, got {other:?}"),
        }
    }

    #[test]
    fn randomized_check_large_inputs() {
        let a = xor_chain(20);
        let b = xor_tree(20);
        assert!(check_aig_equivalence(&a, &b, 10, 16).is_ok());
    }

    #[test]
    fn randomized_check_finds_difference() {
        let a = xor_chain(20);
        let mut b = xor_tree(20);
        let p = b.pi(3);
        let bad = {
            let old = b.pos()[0];
            b.or(old, p)
        };
        b.set_po(0, bad);
        match check_aig_equivalence(&a, &b, 10, 16) {
            EquivalenceOutcome::CounterExample(x) => assert_ne!(a.eval(x), b.eval(x)),
            other => panic!("expected counterexample, got {other:?}"),
        }
    }
}
