//! A fast, non-cryptographic hasher for the synthesis mid-end.
//!
//! Every hot map in the workspace — the AIG/XMG structural-hash tables, the
//! BDD unique/operation caches, cut-enumeration memos, the PSDKRO memo, and
//! the exorcism cube index — is keyed by small fixed-width values (node ids,
//! packed `u64` masks, pairs of handles). `std`'s default SipHash spends
//! most of its time on HashDoS resistance these internal tables do not need,
//! so this module provides an FxHash-style multiply-xor hasher (the scheme
//! rustc uses for its interners) as a drop-in [`BuildHasher`].
//!
//! # Example
//!
//! ```
//! use qda_logic::hash::FxHashMap;
//!
//! let mut unique: FxHashMap<(u32, u32), u32> = FxHashMap::default();
//! unique.insert((3, 7), 42);
//! assert_eq!(unique[&(3, 7)], 42);
//! ```

use std::hash::{BuildHasher, Hasher};

/// `HashMap` keyed with [`FxBuildHasher`].
pub type FxHashMap<K, V> = std::collections::HashMap<K, V, FxBuildHasher>;

/// `HashSet` keyed with [`FxBuildHasher`].
pub type FxHashSet<T> = std::collections::HashSet<T, FxBuildHasher>;

/// Returns an [`FxHashMap`] pre-sized for `capacity` entries.
pub fn fx_map_with_capacity<K, V>(capacity: usize) -> FxHashMap<K, V> {
    FxHashMap::with_capacity_and_hasher(capacity, FxBuildHasher)
}

/// Multiplier from the golden-ratio family (same constant as rustc's
/// FxHash); spreads low-entropy keys across the high bits.
const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// The multiply-xor streaming hasher. One `rotate ⊕ mul` round per word.
#[derive(Clone, Copy, Debug, Default)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            self.add(u64::from_le_bytes(chunk.try_into().expect("8-byte chunk")));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut tail = [0u8; 8];
            tail[..rest.len()].copy_from_slice(rest);
            self.add(u64::from_le_bytes(tail) | ((rest.len() as u64) << 56));
        }
    }

    #[inline]
    fn write_u8(&mut self, i: u8) {
        self.add(i as u64);
    }

    #[inline]
    fn write_u16(&mut self, i: u16) {
        self.add(i as u64);
    }

    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.add(i as u64);
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.add(i);
    }

    #[inline]
    fn write_u128(&mut self, i: u128) {
        self.add(i as u64);
        self.add((i >> 64) as u64);
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.add(i as u64);
    }
}

/// [`BuildHasher`] producing [`FxHasher`]s; no per-map random state, so
/// iteration order is deterministic run-over-run.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FxBuildHasher;

impl BuildHasher for FxBuildHasher {
    type Hasher = FxHasher;

    #[inline]
    fn build_hasher(&self) -> FxHasher {
        FxHasher::default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::hash::Hash;

    fn hash_of<T: Hash + ?Sized>(value: &T) -> u64 {
        let mut h = FxHasher::default();
        value.hash(&mut h);
        h.finish()
    }

    #[test]
    fn deterministic_across_hashers() {
        assert_eq!(hash_of(&(1u64, 2u64)), hash_of(&(1u64, 2u64)));
        assert_ne!(hash_of(&(1u64, 2u64)), hash_of(&(2u64, 1u64)));
    }

    #[test]
    fn small_keys_spread() {
        // Consecutive integers must not collide and must differ in the high
        // bits the hashbrown control bytes are derived from.
        let mut tops = FxHashSet::default();
        for i in 0..1024u64 {
            tops.insert(hash_of(&i) >> 57);
        }
        assert!(tops.len() > 32, "only {} distinct top-7s", tops.len());
    }

    #[test]
    fn byte_streams_include_length() {
        // Same prefix, different tails (and lengths) must hash apart even
        // when the tail is all zeros.
        assert_ne!(hash_of(&[0u8; 3].as_slice()), hash_of(&[0u8; 4].as_slice()));
        assert_ne!(hash_of(b"abc".as_slice()), hash_of(b"abcd".as_slice()));
    }

    #[test]
    fn map_behaves_like_std() {
        let mut m = fx_map_with_capacity::<u64, u64>(64);
        for i in 0..256 {
            m.insert(i, i * 3);
        }
        for i in 0..256 {
            assert_eq!(m.get(&i), Some(&(i * 3)));
        }
        assert_eq!(m.len(), 256);
    }
}
