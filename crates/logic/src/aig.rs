//! And-inverter graphs (AIGs).
//!
//! An [`Aig`] is a DAG whose internal nodes are two-input ANDs and whose
//! edges may be complemented. It is the workhorse of the logic-synthesis
//! level: the Verilog frontend bit-blasts into an AIG, `qda-classical`
//! optimizes it, and all three reversible back-ends consume it (after
//! collapsing to a BDD, extracting an ESOP, or mapping to an XMG).
//!
//! Nodes are stored in topological order (fanins always precede fanouts),
//! node 0 is the constant false, nodes `1..=num_pis` are the primary
//! inputs. Structural hashing makes node construction canonical.

use crate::hash::FxHashMap;
use std::fmt;

/// A literal: a reference to an AIG node together with a complement flag.
///
/// # Example
///
/// ```
/// use qda_logic::aig::Aig;
///
/// let mut aig = Aig::new(2);
/// let a = aig.pi(0);
/// let b = aig.pi(1);
/// let f = aig.and(a, !b);
/// aig.add_po(f);
/// assert_eq!(aig.eval(0b01), 0b1); // a & !b with a=1, b=0
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Lit(u32);

impl Lit {
    /// The constant-false literal.
    pub const FALSE: Lit = Lit(0);
    /// The constant-true literal.
    pub const TRUE: Lit = Lit(1);

    /// Builds a literal from a node index and complement flag.
    pub fn new(node: usize, complement: bool) -> Self {
        Lit((node as u32) << 1 | u32::from(complement))
    }

    /// Node index this literal points at.
    pub fn node(self) -> usize {
        (self.0 >> 1) as usize
    }

    /// Whether the literal is complemented.
    pub fn is_complement(self) -> bool {
        self.0 & 1 == 1
    }

    /// Whether this is one of the two constants.
    pub fn is_const(self) -> bool {
        self.node() == 0
    }

    /// Raw encoding (`2*node + complement`), the AIGER convention.
    pub fn index(self) -> u32 {
        self.0
    }
}

impl std::ops::Not for Lit {
    type Output = Lit;
    fn not(self) -> Lit {
        Lit(self.0 ^ 1)
    }
}

impl fmt::Debug for Lit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_complement() {
            write!(f, "!n{}", self.node())
        } else {
            write!(f, "n{}", self.node())
        }
    }
}

/// An And-inverter graph.
#[derive(Clone)]
pub struct Aig {
    /// `fanins[i]` for `i > num_pis` holds the two fanin literals of AND
    /// node `i`; entries for the constant and the PIs are unused.
    fanins: Vec<[Lit; 2]>,
    num_pis: usize,
    pos: Vec<Lit>,
    strash: FxHashMap<(Lit, Lit), usize>,
}

impl Aig {
    /// Creates an AIG with `num_pis` primary inputs and no outputs.
    pub fn new(num_pis: usize) -> Self {
        Self {
            fanins: vec![[Lit::FALSE; 2]; num_pis + 1],
            num_pis,
            pos: Vec::new(),
            strash: FxHashMap::default(),
        }
    }

    /// Number of primary inputs.
    pub fn num_pis(&self) -> usize {
        self.num_pis
    }

    /// Number of primary outputs.
    pub fn num_pos(&self) -> usize {
        self.pos.len()
    }

    /// Number of AND nodes (excludes constant and PIs).
    pub fn num_ands(&self) -> usize {
        self.fanins.len() - self.num_pis - 1
    }

    /// Total node count including constant and PIs.
    pub fn num_nodes(&self) -> usize {
        self.fanins.len()
    }

    /// The literal of primary input `i` (0-based).
    ///
    /// # Panics
    ///
    /// Panics if `i >= num_pis`.
    pub fn pi(&self, i: usize) -> Lit {
        assert!(i < self.num_pis, "PI {i} out of range");
        Lit::new(i + 1, false)
    }

    /// The primary-output literals.
    pub fn pos(&self) -> &[Lit] {
        &self.pos
    }

    /// Registers a primary output and returns its index.
    pub fn add_po(&mut self, lit: Lit) -> usize {
        self.pos.push(lit);
        self.pos.len() - 1
    }

    /// Replaces output `i` with a new literal.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn set_po(&mut self, i: usize, lit: Lit) {
        self.pos[i] = lit;
    }

    /// Whether node `i` is an AND gate (vs. constant/PI).
    pub fn is_and(&self, node: usize) -> bool {
        node > self.num_pis
    }

    /// Whether node `i` is a primary input.
    pub fn is_pi(&self, node: usize) -> bool {
        node >= 1 && node <= self.num_pis
    }

    /// Fanins of AND node `node`.
    ///
    /// # Panics
    ///
    /// Panics if `node` is not an AND node.
    pub fn fanins(&self, node: usize) -> [Lit; 2] {
        assert!(self.is_and(node), "node {node} is not an AND");
        self.fanins[node]
    }

    /// Creates (or reuses) the AND of two literals, applying trivial
    /// simplification rules and structural hashing.
    pub fn and(&mut self, a: Lit, b: Lit) -> Lit {
        // Normalize operand order for canonical hashing.
        let (a, b) = if a.index() <= b.index() {
            (a, b)
        } else {
            (b, a)
        };
        if a == Lit::FALSE || a == !b {
            return Lit::FALSE;
        }
        if a == Lit::TRUE {
            return b;
        }
        if a == b {
            return a;
        }
        if let Some(&n) = self.strash.get(&(a, b)) {
            return Lit::new(n, false);
        }
        let n = self.fanins.len();
        self.fanins.push([a, b]);
        self.strash.insert((a, b), n);
        Lit::new(n, false)
    }

    /// OR via De Morgan.
    pub fn or(&mut self, a: Lit, b: Lit) -> Lit {
        !self.and(!a, !b)
    }

    /// XOR composed of three ANDs (no structural XOR nodes in an AIG).
    pub fn xor(&mut self, a: Lit, b: Lit) -> Lit {
        let n = self.and(a, !b);
        let m = self.and(!a, b);
        self.or(n, m)
    }

    /// XNOR.
    pub fn xnor(&mut self, a: Lit, b: Lit) -> Lit {
        !self.xor(a, b)
    }

    /// Multiplexer `s ? t : e`.
    pub fn mux(&mut self, s: Lit, t: Lit, e: Lit) -> Lit {
        let a = self.and(s, t);
        let b = self.and(!s, e);
        self.or(a, b)
    }

    /// Majority-of-three.
    pub fn maj(&mut self, a: Lit, b: Lit, c: Lit) -> Lit {
        let ab = self.and(a, b);
        let ac = self.and(a, c);
        let bc = self.and(b, c);
        let t = self.or(ab, ac);
        self.or(t, bc)
    }

    /// Conjunction of many literals (balanced tree).
    pub fn and_many(&mut self, lits: &[Lit]) -> Lit {
        match lits {
            [] => Lit::TRUE,
            [l] => *l,
            _ => {
                let mid = lits.len() / 2;
                let (lo, hi) = lits.split_at(mid);
                let a = self.and_many(lo);
                let b = self.and_many(hi);
                self.and(a, b)
            }
        }
    }

    /// Evaluates all outputs on one assignment (bit `i` of `x` = PI `i`),
    /// returning the output word. Usable for up to 64 PIs and 64 POs.
    pub fn eval(&self, x: u64) -> u64 {
        let mut values = vec![false; self.fanins.len()];
        for i in 0..self.num_pis {
            values[i + 1] = (x >> i) & 1 == 1;
        }
        for n in (self.num_pis + 1)..self.fanins.len() {
            let [a, b] = self.fanins[n];
            values[n] =
                (values[a.node()] ^ a.is_complement()) && (values[b.node()] ^ b.is_complement());
        }
        let mut y = 0u64;
        for (j, po) in self.pos.iter().enumerate() {
            if values[po.node()] ^ po.is_complement() {
                y |= 1 << j;
            }
        }
        y
    }

    /// 64-way parallel simulation: `inputs[i]` carries 64 assignments for
    /// PI `i`; returns one word per node.
    ///
    /// # Panics
    ///
    /// Panics if `inputs.len() != num_pis`.
    pub fn simulate_words(&self, inputs: &[u64]) -> Vec<u64> {
        assert_eq!(inputs.len(), self.num_pis, "one word per PI expected");
        let mut values = vec![0u64; self.fanins.len()];
        values[1..=self.num_pis].copy_from_slice(inputs);
        for n in (self.num_pis + 1)..self.fanins.len() {
            let [a, b] = self.fanins[n];
            let va = values[a.node()] ^ if a.is_complement() { u64::MAX } else { 0 };
            let vb = values[b.node()] ^ if b.is_complement() { u64::MAX } else { 0 };
            values[n] = va & vb;
        }
        values
    }

    /// Value of a literal given per-node simulation words.
    pub fn lit_value(values: &[u64], lit: Lit) -> u64 {
        values[lit.node()] ^ if lit.is_complement() { u64::MAX } else { 0 }
    }

    /// Logic level (depth) of every node; PIs and the constant are level 0.
    pub fn levels(&self) -> Vec<usize> {
        let mut lv = vec![0usize; self.fanins.len()];
        for n in (self.num_pis + 1)..self.fanins.len() {
            let [a, b] = self.fanins[n];
            lv[n] = 1 + lv[a.node()].max(lv[b.node()]);
        }
        lv
    }

    /// Depth of the AIG (max output level).
    pub fn depth(&self) -> usize {
        let lv = self.levels();
        self.pos.iter().map(|po| lv[po.node()]).max().unwrap_or(0)
    }

    /// Removes nodes not reachable from any output, preserving PIs.
    /// Returns the cleaned AIG (node indices change).
    pub fn cleanup(&self) -> Aig {
        let mut reach = vec![false; self.fanins.len()];
        let mut stack: Vec<usize> = self.pos.iter().map(|p| p.node()).collect();
        while let Some(n) = stack.pop() {
            if reach[n] || !self.is_and(n) {
                reach[n] = true;
                continue;
            }
            reach[n] = true;
            let [a, b] = self.fanins[n];
            stack.push(a.node());
            stack.push(b.node());
        }
        let mut out = Aig::new(self.num_pis);
        let mut map: Vec<Lit> = vec![Lit::FALSE; self.fanins.len()];
        for (i, m) in map.iter_mut().enumerate().take(self.num_pis + 1) {
            *m = Lit::new(i, false);
        }
        for n in (self.num_pis + 1)..self.fanins.len() {
            if !reach[n] {
                continue;
            }
            let [a, b] = self.fanins[n];
            let la = map[a.node()] ^ a.is_complement();
            let lb = map[b.node()] ^ b.is_complement();
            map[n] = out.and(la, lb);
        }
        for po in &self.pos {
            let l = map[po.node()] ^ po.is_complement();
            out.add_po(l);
        }
        out
    }

    /// Explicit truth tables of all outputs (`num_pis ≤ 20` recommended).
    pub fn to_truth_tables(&self) -> crate::tt::MultiTruthTable {
        use crate::tt::{MultiTruthTable, TruthTable};
        let n = self.num_pis;
        // Simulate in 64-assignment batches.
        let mut outs = vec![TruthTable::zero(n); self.pos.len()];
        let total = 1u64 << n;
        let mut base = 0u64;
        while base < total {
            let mut inputs = vec![0u64; n];
            for k in 0..64.min(total - base) {
                let x = base + k;
                for (i, inp) in inputs.iter_mut().enumerate() {
                    if (x >> i) & 1 == 1 {
                        *inp |= 1 << k;
                    }
                }
            }
            let values = self.simulate_words(&inputs);
            for (j, po) in self.pos.iter().enumerate() {
                let w = Self::lit_value(&values, *po);
                for k in 0..64.min(total - base) {
                    if (w >> k) & 1 == 1 {
                        outs[j].set(base + k, true);
                    }
                }
            }
            base += 64;
        }
        MultiTruthTable::from_outputs(outs)
    }
}

impl std::ops::BitXor<bool> for Lit {
    type Output = Lit;
    fn bitxor(self, rhs: bool) -> Lit {
        Lit(self.0 ^ u32::from(rhs))
    }
}

impl fmt::Debug for Aig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "Aig({} PIs, {} ANDs, {} POs, depth {})",
            self.num_pis,
            self.num_ands(),
            self.pos.len(),
            self.depth()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trivial_rules() {
        let mut aig = Aig::new(1);
        let a = aig.pi(0);
        assert_eq!(aig.and(a, Lit::FALSE), Lit::FALSE);
        assert_eq!(aig.and(a, Lit::TRUE), a);
        assert_eq!(aig.and(a, a), a);
        assert_eq!(aig.and(a, !a), Lit::FALSE);
        assert_eq!(aig.num_ands(), 0);
    }

    #[test]
    fn structural_hashing_reuses_nodes() {
        let mut aig = Aig::new(2);
        let a = aig.pi(0);
        let b = aig.pi(1);
        let f = aig.and(a, b);
        let g = aig.and(b, a);
        assert_eq!(f, g);
        assert_eq!(aig.num_ands(), 1);
    }

    #[test]
    fn xor_mux_maj_semantics() {
        let mut aig = Aig::new(3);
        let a = aig.pi(0);
        let b = aig.pi(1);
        let c = aig.pi(2);
        let x = aig.xor(a, b);
        let m = aig.mux(a, b, c);
        let j = aig.maj(a, b, c);
        aig.add_po(x);
        aig.add_po(m);
        aig.add_po(j);
        for input in 0..8u64 {
            let (va, vb, vc) = (input & 1, (input >> 1) & 1, (input >> 2) & 1);
            let y = aig.eval(input);
            assert_eq!(y & 1, va ^ vb, "xor at {input}");
            assert_eq!(
                (y >> 1) & 1,
                if va == 1 { vb } else { vc },
                "mux at {input}"
            );
            assert_eq!((y >> 2) & 1, u64::from(va + vb + vc >= 2), "maj at {input}");
        }
    }

    #[test]
    fn simulate_words_matches_eval() {
        let mut aig = Aig::new(4);
        let pis: Vec<Lit> = (0..4).map(|i| aig.pi(i)).collect();
        let t = aig.xor(pis[0], pis[1]);
        let u = aig.maj(t, pis[2], pis[3]);
        aig.add_po(u);
        let tts = aig.to_truth_tables();
        for x in 0..16u64 {
            assert_eq!(u64::from(tts.outputs()[0].get(x)), aig.eval(x));
        }
    }

    #[test]
    fn cleanup_drops_dead_nodes() {
        let mut aig = Aig::new(2);
        let a = aig.pi(0);
        let b = aig.pi(1);
        let _dead = aig.xor(a, b);
        let live = aig.and(a, b);
        aig.add_po(live);
        let cleaned = aig.cleanup();
        assert_eq!(cleaned.num_ands(), 1);
        for x in 0..4u64 {
            assert_eq!(cleaned.eval(x), aig.eval(x));
        }
    }

    #[test]
    fn and_many_balanced() {
        let mut aig = Aig::new(5);
        let lits: Vec<Lit> = (0..5).map(|i| aig.pi(i)).collect();
        let all = aig.and_many(&lits);
        aig.add_po(all);
        for x in 0..32u64 {
            assert_eq!(aig.eval(x), u64::from(x == 31));
        }
        assert_eq!(aig.and_many(&[]), Lit::TRUE);
    }

    #[test]
    fn depth_and_levels() {
        let mut aig = Aig::new(4);
        let pis: Vec<Lit> = (0..4).map(|i| aig.pi(i)).collect();
        let chain = pis
            .iter()
            .copied()
            .reduce(|acc, p| aig.and(acc, p))
            .unwrap();
        aig.add_po(chain);
        assert_eq!(aig.depth(), 3);
    }
}
