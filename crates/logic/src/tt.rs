//! Explicit truth tables for single-output Boolean functions.
//!
//! A [`TruthTable`] stores the value of an `n`-variable function for all
//! `2^n` input assignments, packed 64 assignments per `u64` word. The
//! variable with index 0 is the least-significant bit of the assignment
//! index. Truth tables are the *functional* representation of the paper:
//! they feed the embedding step and transformation-based synthesis, and
//! they serve as the reference semantics for every other representation in
//! this workspace.

use std::fmt;
use std::ops::{BitAnd, BitOr, BitXor, Not};

/// Error from parsing a textual truth table ([`TruthTable::from_binary_str`]).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ParseTtError {
    /// The string length is not a power of two (or exceeds `2^MAX_VARS`).
    BadLength(usize),
    /// A character other than `0`/`1` at the given byte offset.
    BadChar {
        /// 0-based offset of the offending character.
        index: usize,
        /// The character found.
        ch: char,
    },
}

impl fmt::Display for ParseTtError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParseTtError::BadLength(len) => {
                write!(
                    f,
                    "truth table length {len} is not a power of two ≤ 2^{MAX_VARS}"
                )
            }
            ParseTtError::BadChar { index, ch } => {
                write!(
                    f,
                    "invalid character {ch:?} at offset {index} (expected 0 or 1)"
                )
            }
        }
    }
}

impl std::error::Error for ParseTtError {}

/// Maximum number of variables supported by explicit truth tables.
///
/// `2^24` bits = 2 MiB per table; enough for every experiment in the paper
/// (the functional flow stops at `n = 16`, i.e. 17-variable embedded
/// functions).
pub const MAX_VARS: usize = 24;

/// An explicit truth table over `n ≤ 24` variables.
///
/// # Example
///
/// ```
/// use qda_logic::tt::TruthTable;
///
/// let x0 = TruthTable::var(2, 0);
/// let x1 = TruthTable::var(2, 1);
/// let and = &x0 & &x1;
/// assert_eq!(and.get(3), true);
/// assert_eq!(and.count_ones(), 1);
/// ```
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct TruthTable {
    num_vars: usize,
    words: Vec<u64>,
}

fn word_count(num_vars: usize) -> usize {
    if num_vars >= 6 {
        1 << (num_vars - 6)
    } else {
        1
    }
}

/// Mask selecting the valid bits of the (single) word of a small table.
fn small_mask(num_vars: usize) -> u64 {
    if num_vars >= 6 {
        u64::MAX
    } else {
        (1u64 << (1 << num_vars)) - 1
    }
}

impl TruthTable {
    /// Creates the constant-zero function over `num_vars` variables.
    ///
    /// # Panics
    ///
    /// Panics if `num_vars > MAX_VARS`.
    pub fn zero(num_vars: usize) -> Self {
        assert!(num_vars <= MAX_VARS, "too many variables: {num_vars}");
        Self {
            num_vars,
            words: vec![0; word_count(num_vars)],
        }
    }

    /// Creates the constant-one function over `num_vars` variables.
    pub fn one(num_vars: usize) -> Self {
        let mut t = Self::zero(num_vars);
        let mask = small_mask(num_vars);
        for w in &mut t.words {
            *w = mask;
        }
        t
    }

    /// Creates the projection function `x_i` over `num_vars` variables.
    ///
    /// # Panics
    ///
    /// Panics if `var >= num_vars`.
    pub fn var(num_vars: usize, var: usize) -> Self {
        assert!(var < num_vars, "variable {var} out of range");
        let mut t = Self::zero(num_vars);
        if var < 6 {
            // Repeating bit pattern within each word.
            let block = match var {
                0 => 0xAAAA_AAAA_AAAA_AAAA,
                1 => 0xCCCC_CCCC_CCCC_CCCC,
                2 => 0xF0F0_F0F0_F0F0_F0F0,
                3 => 0xFF00_FF00_FF00_FF00,
                4 => 0xFFFF_0000_FFFF_0000,
                _ => 0xFFFF_FFFF_0000_0000,
            };
            let mask = small_mask(num_vars);
            for w in &mut t.words {
                *w = block & mask;
            }
        } else {
            // Whole words alternate in runs of 2^(var-6).
            let run = 1usize << (var - 6);
            for (i, w) in t.words.iter_mut().enumerate() {
                if (i / run) & 1 == 1 {
                    *w = u64::MAX;
                }
            }
        }
        t
    }

    /// Builds a truth table by evaluating `f` on every assignment.
    ///
    /// The assignment is passed as an integer whose bit `i` is the value of
    /// variable `i`.
    pub fn from_fn<F: FnMut(u64) -> bool>(num_vars: usize, mut f: F) -> Self {
        let mut t = Self::zero(num_vars);
        for x in 0..(1u64 << num_vars) {
            if f(x) {
                t.set(x, true);
            }
        }
        t
    }

    /// Builds a truth table from the raw words (least-significant
    /// assignment first).
    ///
    /// # Panics
    ///
    /// Panics if `words` does not have exactly the expected length.
    pub fn from_words(num_vars: usize, words: Vec<u64>) -> Self {
        assert_eq!(words.len(), word_count(num_vars), "wrong word count");
        let mut t = Self { num_vars, words };
        t.normalize();
        t
    }

    /// Parses a binary string, most-significant assignment first, as
    /// conventional in logic-synthesis literature (`"1000"` is AND of two
    /// variables).
    ///
    /// # Example
    ///
    /// ```
    /// use qda_logic::tt::{ParseTtError, TruthTable};
    ///
    /// let and = TruthTable::from_binary_str("1000")?;
    /// assert_eq!(and.count_ones(), 1);
    /// assert!(matches!(
    ///     TruthTable::from_binary_str("10x0"),
    ///     Err(ParseTtError::BadChar { index: 2, ch: 'x' })
    /// ));
    /// # Ok::<(), ParseTtError>(())
    /// ```
    ///
    /// # Errors
    ///
    /// Returns [`ParseTtError`] if the length is not a power of two (at
    /// most `2^MAX_VARS`) or the string contains characters other than
    /// `0`/`1`.
    pub fn from_binary_str(s: &str) -> Result<Self, ParseTtError> {
        let len = s.len();
        if !len.is_power_of_two() || len > 1 << MAX_VARS {
            return Err(ParseTtError::BadLength(len));
        }
        let num_vars = len.trailing_zeros() as usize;
        let mut t = Self::zero(num_vars);
        for (i, c) in s.chars().enumerate() {
            let idx = (len - 1 - i) as u64;
            match c {
                '1' => t.set(idx, true),
                '0' => {}
                _ => return Err(ParseTtError::BadChar { index: i, ch: c }),
            }
        }
        Ok(t)
    }

    fn normalize(&mut self) {
        if self.num_vars < 6 {
            let mask = small_mask(self.num_vars);
            self.words[0] &= mask;
        }
    }

    /// Number of variables.
    pub fn num_vars(&self) -> usize {
        self.num_vars
    }

    /// Number of assignments (`2^n`).
    pub fn num_bits(&self) -> u64 {
        1u64 << self.num_vars
    }

    /// Raw words backing this table.
    pub fn words(&self) -> &[u64] {
        &self.words
    }

    /// Value of the function on assignment `x`.
    ///
    /// # Panics
    ///
    /// Panics if `x >= 2^n`.
    pub fn get(&self, x: u64) -> bool {
        assert!(x < self.num_bits(), "assignment out of range");
        (self.words[(x >> 6) as usize] >> (x & 63)) & 1 == 1
    }

    /// Sets the value of the function on assignment `x`.
    ///
    /// # Panics
    ///
    /// Panics if `x >= 2^n`.
    pub fn set(&mut self, x: u64, value: bool) {
        assert!(x < self.num_bits(), "assignment out of range");
        let w = &mut self.words[(x >> 6) as usize];
        if value {
            *w |= 1 << (x & 63);
        } else {
            *w &= !(1 << (x & 63));
        }
    }

    /// Number of satisfying assignments.
    pub fn count_ones(&self) -> u64 {
        self.words.iter().map(|w| w.count_ones() as u64).sum()
    }

    /// Whether the function is constant zero.
    pub fn is_zero(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    /// Whether the function is constant one.
    pub fn is_one(&self) -> bool {
        let mask = small_mask(self.num_vars);
        self.words.iter().all(|&w| w == mask)
    }

    /// Whether variable `var` is in the functional support.
    pub fn depends_on(&self, var: usize) -> bool {
        self.cofactor(var, false) != self.cofactor(var, true)
    }

    /// The set of support variables.
    pub fn support(&self) -> Vec<usize> {
        (0..self.num_vars).filter(|&v| self.depends_on(v)).collect()
    }

    /// Shannon cofactor with `var` fixed to `value`. The result still has
    /// `n` variables (the cofactored variable becomes irrelevant).
    pub fn cofactor(&self, var: usize, value: bool) -> Self {
        let proj = Self::var(self.num_vars, var);
        let mut out = self.clone();
        // For each assignment x, out(x) = self(x with var := value).
        if var < 6 {
            let shift = 1u64 << var;
            for (o, (&s, &p)) in out
                .words
                .iter_mut()
                .zip(self.words.iter().zip(proj.words.iter()))
            {
                *o = if value {
                    let hi = s & p;
                    hi | (hi >> shift)
                } else {
                    let lo = s & !p;
                    lo | (lo << shift)
                };
            }
        } else {
            let run = 1usize << (var - 6);
            let n = out.words.len();
            for i in 0..n {
                let src = if value { i | run } else { i & !run };
                out.words[i] = self.words[src];
            }
        }
        out.normalize();
        out
    }

    /// Returns `f_{x=1} XOR f_{x=0}` — the Boolean difference w.r.t. `var`.
    pub fn boolean_difference(&self, var: usize) -> Self {
        &self.cofactor(var, true) ^ &self.cofactor(var, false)
    }

    /// Swaps two variables of the function.
    pub fn swap_vars(&self, a: usize, b: usize) -> Self {
        if a == b {
            return self.clone();
        }
        Self::from_fn(self.num_vars, |x| {
            let ba = (x >> a) & 1;
            let bb = (x >> b) & 1;
            let mut y = x & !((1 << a) | (1 << b));
            y |= ba << b;
            y |= bb << a;
            self.get(y)
        })
    }

    /// Complements variable `var` in the function (`f(x) → f(x ^ e_var)`).
    pub fn flip_var(&self, var: usize) -> Self {
        Self::from_fn(self.num_vars, |x| self.get(x ^ (1 << var)))
    }

    /// Iterator over all satisfying assignments, ascending.
    pub fn ones(&self) -> impl Iterator<Item = u64> + '_ {
        (0..self.num_bits()).filter(move |&x| self.get(x))
    }
}

impl fmt::Debug for TruthTable {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "TruthTable({} vars, ", self.num_vars)?;
        if self.num_vars <= 6 {
            let width = (1usize << self.num_vars).div_ceil(4).max(1);
            write!(f, "0x{:0width$x})", self.words[0], width = width)
        } else {
            write!(f, "{} ones)", self.count_ones())
        }
    }
}

impl fmt::Display for TruthTable {
    /// Binary string, most-significant assignment first (matching
    /// [`TruthTable::from_binary_str`]).
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for x in (0..self.num_bits()).rev() {
            write!(f, "{}", u8::from(self.get(x)))?;
        }
        Ok(())
    }
}

macro_rules! impl_bitop {
    ($trait:ident, $method:ident, $op:tt) => {
        impl $trait for &TruthTable {
            type Output = TruthTable;
            fn $method(self, rhs: &TruthTable) -> TruthTable {
                assert_eq!(self.num_vars, rhs.num_vars, "arity mismatch");
                let words = self
                    .words
                    .iter()
                    .zip(&rhs.words)
                    .map(|(a, b)| a $op b)
                    .collect();
                let mut t = TruthTable { num_vars: self.num_vars, words };
                t.normalize();
                t
            }
        }
    };
}

impl_bitop!(BitAnd, bitand, &);
impl_bitop!(BitOr, bitor, |);
impl_bitop!(BitXor, bitxor, ^);

impl Not for &TruthTable {
    type Output = TruthTable;
    fn not(self) -> TruthTable {
        let words = self.words.iter().map(|w| !w).collect();
        let mut t = TruthTable {
            num_vars: self.num_vars,
            words,
        };
        t.normalize();
        t
    }
}

/// A multi-output Boolean function `f : B^n → B^m` stored as one truth
/// table per output.
///
/// # Example
///
/// ```
/// use qda_logic::tt::MultiTruthTable;
///
/// // 2-bit increment (mod 4).
/// let inc = MultiTruthTable::from_fn(2, 2, |x| (x + 1) & 3);
/// assert_eq!(inc.eval(3), 0);
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct MultiTruthTable {
    num_vars: usize,
    outputs: Vec<TruthTable>,
}

impl MultiTruthTable {
    /// Builds an `n`-input, `m`-output function from a word-level oracle:
    /// `f(x)` returns the output word whose bit `j` is output `j`.
    ///
    /// # Panics
    ///
    /// Panics if `num_outputs > 64` or `num_vars > MAX_VARS`.
    pub fn from_fn<F: FnMut(u64) -> u64>(num_vars: usize, num_outputs: usize, mut f: F) -> Self {
        assert!(num_outputs <= 64, "at most 64 outputs");
        let mut outputs = vec![TruthTable::zero(num_vars); num_outputs];
        for x in 0..(1u64 << num_vars) {
            let y = f(x);
            for (j, out) in outputs.iter_mut().enumerate() {
                if (y >> j) & 1 == 1 {
                    out.set(x, true);
                }
            }
        }
        Self { num_vars, outputs }
    }

    /// Builds from individual output tables.
    ///
    /// # Panics
    ///
    /// Panics if the tables disagree on arity or `outputs` is empty.
    pub fn from_outputs(outputs: Vec<TruthTable>) -> Self {
        assert!(!outputs.is_empty(), "need at least one output");
        let num_vars = outputs[0].num_vars();
        assert!(
            outputs.iter().all(|t| t.num_vars() == num_vars),
            "arity mismatch between outputs"
        );
        Self { num_vars, outputs }
    }

    /// Number of input variables.
    pub fn num_vars(&self) -> usize {
        self.num_vars
    }

    /// Number of outputs.
    pub fn num_outputs(&self) -> usize {
        self.outputs.len()
    }

    /// Per-output truth tables.
    pub fn outputs(&self) -> &[TruthTable] {
        &self.outputs
    }

    /// Evaluates the function, returning the output word.
    pub fn eval(&self, x: u64) -> u64 {
        let mut y = 0;
        for (j, t) in self.outputs.iter().enumerate() {
            if t.get(x) {
                y |= 1 << j;
            }
        }
        y
    }

    /// Size of the largest collision class `max_y |f^{-1}(y)|` — the
    /// quantity in Eq. (3) of the paper that determines the optimum number
    /// of additional embedding lines.
    pub fn max_collisions(&self) -> u64 {
        let mut histogram = std::collections::HashMap::new();
        for x in 0..(1u64 << self.num_vars) {
            *histogram.entry(self.eval(x)).or_insert(0u64) += 1;
        }
        histogram.into_values().max().unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn var_tables_match_definition() {
        for n in 1..=8 {
            for v in 0..n {
                let t = TruthTable::var(n, v);
                for x in 0..(1u64 << n) {
                    assert_eq!(t.get(x), (x >> v) & 1 == 1, "n={n} v={v} x={x}");
                }
            }
        }
    }

    #[test]
    fn large_var_tables() {
        let t = TruthTable::var(8, 7);
        assert_eq!(t.count_ones(), 128);
        assert!(!t.get(127));
        assert!(t.get(128));
    }

    #[test]
    fn bitops_and_constants() {
        let a = TruthTable::var(3, 0);
        let b = TruthTable::var(3, 1);
        let and = &a & &b;
        let or = &a | &b;
        let xor = &a ^ &b;
        assert_eq!(and.count_ones(), 2);
        assert_eq!(or.count_ones(), 6);
        assert_eq!(xor.count_ones(), 4);
        assert!((&and & &!&and).is_zero());
        assert!((&or | &!&or).is_one());
        assert_eq!(&xor ^ &xor, TruthTable::zero(3));
    }

    #[test]
    fn cofactor_small_and_large_vars() {
        for n in [3usize, 7, 8] {
            let f = TruthTable::from_fn(n, |x| x.count_ones() % 3 == 0);
            for v in 0..n {
                for val in [false, true] {
                    let c = f.cofactor(v, val);
                    for x in 0..(1u64 << n) {
                        let forced = if val { x | (1 << v) } else { x & !(1 << v) };
                        assert_eq!(c.get(x), f.get(forced), "n={n} v={v} val={val} x={x}");
                    }
                    assert!(!c.depends_on(v));
                }
            }
        }
    }

    #[test]
    fn support_detection() {
        // f = x0 XOR x2 over 4 variables.
        let f = &TruthTable::var(4, 0) ^ &TruthTable::var(4, 2);
        assert_eq!(f.support(), vec![0, 2]);
    }

    #[test]
    fn swap_and_flip() {
        let f = TruthTable::from_fn(4, |x| (x & 1) == 1 && (x >> 3) & 1 == 0);
        let g = f.swap_vars(0, 3);
        for x in 0..16u64 {
            let b0 = x & 1;
            let b3 = (x >> 3) & 1;
            let y = (x & !0b1001) | (b0 << 3) | b3;
            assert_eq!(g.get(x), f.get(y));
        }
        let h = f.flip_var(0);
        for x in 0..16u64 {
            assert_eq!(h.get(x), f.get(x ^ 1));
        }
    }

    #[test]
    fn binary_string_round_trip() {
        let t = TruthTable::from_binary_str("1000").unwrap();
        assert!(t.get(3));
        assert_eq!(t.count_ones(), 1);
        assert_eq!(t.to_string(), "1000");
    }

    #[test]
    fn binary_string_rejects_bad_input() {
        assert_eq!(
            TruthTable::from_binary_str("101"),
            Err(ParseTtError::BadLength(3))
        );
        assert_eq!(
            TruthTable::from_binary_str(""),
            Err(ParseTtError::BadLength(0))
        );
        assert_eq!(
            TruthTable::from_binary_str("10z0"),
            Err(ParseTtError::BadChar { index: 2, ch: 'z' })
        );
        let e = TruthTable::from_binary_str("abcd").unwrap_err();
        assert!(e.to_string().contains("'a'"));
    }

    #[test]
    fn multi_output_eval_and_collisions() {
        let f = MultiTruthTable::from_fn(3, 2, |x| x % 3);
        assert_eq!(f.eval(5), 2);
        // values 0,1,2 occur 3,3,2 times over 8 inputs
        assert_eq!(f.max_collisions(), 3);
    }

    #[test]
    fn boolean_difference_of_xor_is_one() {
        let f = &TruthTable::var(3, 0) ^ &TruthTable::var(3, 1);
        assert!(f.boolean_difference(0).is_one());
        assert!(f.boolean_difference(2).is_zero());
    }
}
