//! NPN classification of small (≤ 4 variable) Boolean functions.
//!
//! Two functions are NPN-equivalent when one can be obtained from the other
//! by Negating inputs, Permuting inputs, and/or Negating the output. Cut
//! functions that fall into the same NPN class share an optimized XMG
//! structure, so the AIG→XMG mapper (`qda-classical::xmg_map`) classifies
//! every 4-feasible cut before resynthesis.

/// A 4-variable function as a 16-bit truth table (bit `x` = `f(x)`).
pub type Tt4 = u16;

/// The transform that maps a function to its canonical representative.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct NpnTransform {
    /// `perm[i]` = which original variable drives canonical position `i`.
    pub perm: [u8; 4],
    /// Bit `i` set = original variable `i` is complemented.
    pub input_flips: u8,
    /// Whether the output is complemented.
    pub output_flip: bool,
}

impl NpnTransform {
    /// The identity transform.
    pub fn identity() -> Self {
        Self {
            perm: [0, 1, 2, 3],
            input_flips: 0,
            output_flip: false,
        }
    }
}

/// Applies an input permutation+negation and optional output negation to a
/// 4-variable truth table.
pub fn apply_transform(tt: Tt4, t: &NpnTransform) -> Tt4 {
    let mut out: Tt4 = 0;
    for x in 0..16u16 {
        // Build the original assignment from the canonical one.
        let mut orig = 0u16;
        for (i, &p) in t.perm.iter().enumerate() {
            let bit = (x >> i) & 1;
            orig |= bit << p;
        }
        orig ^= t.input_flips as u16;
        let mut v = (tt >> orig) & 1;
        if t.output_flip {
            v ^= 1;
        }
        out |= v << x;
    }
    out
}

/// All 4! permutations of `[0,1,2,3]`.
fn permutations() -> Vec<[u8; 4]> {
    let mut out = Vec::with_capacity(24);
    let items = [0u8, 1, 2, 3];
    fn rec(cur: &mut Vec<u8>, rest: &[u8], out: &mut Vec<[u8; 4]>) {
        if rest.is_empty() {
            out.push([cur[0], cur[1], cur[2], cur[3]]);
            return;
        }
        for (i, &r) in rest.iter().enumerate() {
            cur.push(r);
            let mut next: Vec<u8> = rest.to_vec();
            next.remove(i);
            rec(cur, &next, out);
            cur.pop();
        }
    }
    rec(&mut Vec::new(), &items, &mut out);
    out
}

/// Canonicalizes a 4-variable function under NPN equivalence by exhaustive
/// search (16 input-flip masks × 24 permutations × 2 output flips = 768
/// candidates). Returns the minimal representative and the transform that
/// produces it.
///
/// # Example
///
/// ```
/// use qda_logic::npn::{npn_canonical, apply_transform};
///
/// // AND and NOR are in the same NPN class.
/// let and: u16 = 0x8888 & 0xFF00; // placeholder: x0&x1&… use simple
/// let (c1, _) = npn_canonical(0x8000); // x0&x1&x2&x3
/// let (c2, _) = npn_canonical(0x0001); // !(x0|x1|x2|x3)
/// assert_eq!(c1, c2);
/// # let _ = and;
/// ```
pub fn npn_canonical(tt: Tt4) -> (Tt4, NpnTransform) {
    let mut best = tt;
    let mut best_t = NpnTransform::identity();
    for perm in permutations() {
        for flips in 0..16u8 {
            for out_flip in [false, true] {
                let t = NpnTransform {
                    perm,
                    input_flips: flips,
                    output_flip: out_flip,
                };
                let cand = apply_transform(tt, &t);
                if cand < best {
                    best = cand;
                    best_t = t;
                }
            }
        }
    }
    (best, best_t)
}

/// Number of variables a 4-variable truth table actually depends on.
pub fn support_size(tt: Tt4) -> usize {
    (0..4).filter(|&v| depends_on(tt, v)).count()
}

/// Whether a 4-variable table depends on variable `v`.
pub fn depends_on(tt: Tt4, v: usize) -> bool {
    let masks = [0x5555u16, 0x3333, 0x0F0F, 0x00FF];
    let shift = 1usize << v;
    let lo = tt & masks[v];
    let hi = (tt >> shift) & masks[v];
    lo != hi
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_transform_is_noop() {
        for tt in [0x8000u16, 0x1234, 0xFFFF, 0x0000, 0x6996] {
            assert_eq!(apply_transform(tt, &NpnTransform::identity()), tt);
        }
    }

    #[test]
    fn canonical_is_invariant_under_transforms() {
        let tt: Tt4 = 0x1EE8; // arbitrary
        let (canon, _) = npn_canonical(tt);
        // Apply a few random-ish transforms and re-canonicalize.
        for perm in [[1u8, 0, 2, 3], [3, 2, 1, 0], [2, 0, 3, 1]] {
            for flips in [0u8, 5, 15] {
                let t = NpnTransform {
                    perm,
                    input_flips: flips,
                    output_flip: flips % 2 == 1,
                };
                let variant = apply_transform(tt, &t);
                let (canon2, _) = npn_canonical(variant);
                assert_eq!(canon, canon2);
            }
        }
    }

    #[test]
    fn and_nor_same_class() {
        let (c1, _) = npn_canonical(0x8000);
        let (c2, _) = npn_canonical(0x0001);
        assert_eq!(c1, c2);
    }

    #[test]
    fn xor_class_is_distinct_from_and_class() {
        let xor4: Tt4 = {
            let mut t = 0u16;
            for x in 0..16u16 {
                if x.count_ones() % 2 == 1 {
                    t |= 1 << x;
                }
            }
            t
        };
        let (cx, _) = npn_canonical(xor4);
        let (ca, _) = npn_canonical(0x8000);
        assert_ne!(cx, ca);
    }

    #[test]
    fn transform_returned_maps_to_canonical() {
        for tt in [0x1EE8u16, 0xCAFE, 0x0816] {
            let (canon, t) = npn_canonical(tt);
            assert_eq!(apply_transform(tt, &t), canon);
        }
    }

    #[test]
    fn support_detection() {
        assert_eq!(support_size(0x00FF), 1); // depends only on x3
        assert_eq!(support_size(0x8000), 4);
        assert_eq!(support_size(0x0000), 0);
        assert!(depends_on(0xAAAA, 0));
        assert!(!depends_on(0xAAAA, 1));
    }
}
