//! Boolean function representations used throughout the QDA workspace.
//!
//! This crate provides the *classical* substrate of the DATE 2017 design
//! flows:
//!
//! * [`tt::TruthTable`] — explicit multi-word truth tables (the functional
//!   representation consumed by embedding and transformation-based
//!   synthesis),
//! * [`cube::Cube`] and [`esop::Esop`] — two-level exclusive sum-of-products
//!   (the input of ESOP-based reversible synthesis),
//! * [`aig::Aig`] — And-inverter graphs (the multi-level workhorse of the
//!   logic-synthesis level),
//! * [`xmg::Xmg`] — XOR-majority graphs (the multi-level representation used
//!   by hierarchical reversible synthesis),
//! * [`hash`] — the FxHash-style fast hasher backing every hot map in the
//!   synthesis mid-end (strash tables, BDD caches, cube indexes),
//! * [`par`] — the persistent `QDA_WORKERS` worker pool behind every
//!   sharded inner engine (lazy init, shared injector queue, caller-helps
//!   scheduling, index-ordered results byte-identical to serial).
//!
//! # Example
//!
//! ```
//! use qda_logic::tt::TruthTable;
//!
//! // Majority-of-three as an explicit truth table.
//! let maj = TruthTable::from_fn(3, |x| {
//!     (x & 1) + ((x >> 1) & 1) + ((x >> 2) & 1) >= 2
//! });
//! assert_eq!(maj.count_ones(), 4);
//! ```

pub mod aig;
pub mod cube;
pub mod esop;
pub mod hash;
pub mod npn;
pub mod par;
pub mod sim;
pub mod tt;
pub mod xmg;

pub use aig::{Aig, Lit};
pub use cube::Cube;
pub use esop::Esop;
pub use tt::TruthTable;
pub use xmg::Xmg;
