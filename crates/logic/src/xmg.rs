//! XOR-majority graphs (XMGs).
//!
//! An [`Xmg`] is a logic network whose internal nodes are two-input XORs and
//! three-input majority gates, with complemented edges (Haaswijk et al.,
//! ASP-DAC 2017). The representation is advantageous for reversible logic
//! synthesis because
//!
//! * a MAJ gate costs a single Toffoli (same T-count as AND/OR while being
//!   strictly more expressive),
//! * an XOR gate costs only CNOTs — zero T gates — and
//! * XOR/MAJ can be applied *in place* when operands are no longer needed.
//!
//! AND and OR are the special cases `MAJ(a, b, 0)` and `MAJ(a, b, 1)`.

use crate::aig::Lit;
use crate::hash::FxHashMap;
use crate::tt::{MultiTruthTable, TruthTable};
use std::fmt;

/// An internal XMG node.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum XmgNode {
    /// Two-input exclusive OR.
    Xor([Lit; 2]),
    /// Three-input majority.
    Maj([Lit; 3]),
}

/// An XOR-majority graph.
///
/// Node 0 is the constant false and nodes `1..=num_pis` are primary inputs,
/// mirroring the [`crate::aig::Aig`] conventions (the two structures share
/// the [`Lit`] literal type).
///
/// # Example
///
/// ```
/// use qda_logic::xmg::Xmg;
///
/// let mut xmg = Xmg::new(3);
/// let (a, b, c) = (xmg.pi(0), xmg.pi(1), xmg.pi(2));
/// let s = xmg.xor(a, b);
/// let f = xmg.maj(s, b, c);
/// xmg.add_po(f);
/// assert_eq!(xmg.num_xors(), 1);
/// assert_eq!(xmg.num_majs(), 1);
/// ```
#[derive(Clone)]
pub struct Xmg {
    nodes: Vec<XmgNode>,
    num_pis: usize,
    pos: Vec<Lit>,
    strash: FxHashMap<XmgNode, usize>,
}

impl Xmg {
    /// Creates an XMG with `num_pis` primary inputs.
    pub fn new(num_pis: usize) -> Self {
        // Slots for constant + PIs are placeholders, never inspected.
        let filler = XmgNode::Xor([Lit::FALSE; 2]);
        Self {
            nodes: vec![filler; num_pis + 1],
            num_pis,
            pos: Vec::new(),
            strash: FxHashMap::default(),
        }
    }

    /// Number of primary inputs.
    pub fn num_pis(&self) -> usize {
        self.num_pis
    }

    /// Number of primary outputs.
    pub fn num_pos(&self) -> usize {
        self.pos.len()
    }

    /// Number of internal gates.
    pub fn num_gates(&self) -> usize {
        self.nodes.len() - self.num_pis - 1
    }

    /// Number of XOR gates.
    pub fn num_xors(&self) -> usize {
        self.gate_indices()
            .filter(|&n| matches!(self.nodes[n], XmgNode::Xor(_)))
            .count()
    }

    /// Number of MAJ gates (each costs one Toffoli downstream).
    pub fn num_majs(&self) -> usize {
        self.gate_indices()
            .filter(|&n| matches!(self.nodes[n], XmgNode::Maj(_)))
            .count()
    }

    /// Indices of internal gate nodes in topological order.
    pub fn gate_indices(&self) -> impl Iterator<Item = usize> + '_ {
        (self.num_pis + 1)..self.nodes.len()
    }

    /// Whether `node` is an internal gate.
    pub fn is_gate(&self, node: usize) -> bool {
        node > self.num_pis
    }

    /// Whether `node` is a primary input.
    pub fn is_pi(&self, node: usize) -> bool {
        node >= 1 && node <= self.num_pis
    }

    /// The gate stored at `node`.
    ///
    /// # Panics
    ///
    /// Panics if `node` is not a gate.
    pub fn gate(&self, node: usize) -> XmgNode {
        assert!(self.is_gate(node), "node {node} is not a gate");
        self.nodes[node]
    }

    /// The literal of primary input `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= num_pis`.
    pub fn pi(&self, i: usize) -> Lit {
        assert!(i < self.num_pis, "PI {i} out of range");
        Lit::new(i + 1, false)
    }

    /// The primary-output literals.
    pub fn pos(&self) -> &[Lit] {
        &self.pos
    }

    /// Registers a primary output; returns its index.
    pub fn add_po(&mut self, lit: Lit) -> usize {
        self.pos.push(lit);
        self.pos.len() - 1
    }

    /// Creates (or reuses) an XOR gate. Complements are pulled to the
    /// output so stored XOR nodes always have positive fanins.
    pub fn xor(&mut self, a: Lit, b: Lit) -> Lit {
        if a == b {
            return Lit::FALSE;
        }
        if a == !b {
            return Lit::TRUE;
        }
        if a.is_const() {
            return b ^ (a == Lit::TRUE);
        }
        if b.is_const() {
            return a ^ (b == Lit::TRUE);
        }
        let compl = a.is_complement() ^ b.is_complement();
        let (mut x, mut y) = (Lit::new(a.node(), false), Lit::new(b.node(), false));
        if x > y {
            std::mem::swap(&mut x, &mut y);
        }
        let key = XmgNode::Xor([x, y]);
        let n = *self.strash.entry(key).or_insert_with(|| {
            self.nodes.push(key);
            self.nodes.len() - 1
        });
        Lit::new(n, compl)
    }

    /// Creates (or reuses) a MAJ gate, applying trivial rules
    /// (`maj(a,a,b) = a`, `maj(a,!a,b) = b`) and operand sorting.
    pub fn maj(&mut self, a: Lit, b: Lit, c: Lit) -> Lit {
        let mut ops = [a, b, c];
        ops.sort_unstable();
        let [a, b, c] = ops;
        // Trivial rules.
        if a == b {
            return a;
        }
        if b == c {
            return b;
        }
        if a == !b {
            return c;
        }
        if b == !c {
            return a;
        }
        if a == !c {
            return b;
        }
        // Constant folding: after sorting, constants are first.
        if a == Lit::FALSE {
            // maj(0,b,c) = b & c — still a MAJ node by convention.
        }
        // Self-duality canonicalization: if two or more operands are
        // complemented, complement all and the output.
        let ncompl = ops.iter().filter(|l| l.is_complement()).count();
        if ncompl >= 2 {
            let out = self.maj(!a, !b, !c);
            return !out;
        }
        let mut key_ops = [a, b, c];
        key_ops.sort_unstable();
        let key = XmgNode::Maj(key_ops);
        let n = *self.strash.entry(key).or_insert_with(|| {
            self.nodes.push(key);
            self.nodes.len() - 1
        });
        Lit::new(n, false)
    }

    /// AND as `MAJ(a, b, 0)`.
    pub fn and(&mut self, a: Lit, b: Lit) -> Lit {
        self.maj(a, b, Lit::FALSE)
    }

    /// OR as `MAJ(a, b, 1)`.
    pub fn or(&mut self, a: Lit, b: Lit) -> Lit {
        self.maj(a, b, Lit::TRUE)
    }

    /// Multiplexer `s ? t : e` = `maj(maj(s,t,0), maj(!s,e,0), 1)`.
    pub fn mux(&mut self, s: Lit, t: Lit, e: Lit) -> Lit {
        let a = self.and(s, t);
        let b = self.and(!s, e);
        self.or(a, b)
    }

    /// Evaluates all outputs on one assignment.
    pub fn eval(&self, x: u64) -> u64 {
        let mut values = vec![false; self.nodes.len()];
        for i in 0..self.num_pis {
            values[i + 1] = (x >> i) & 1 == 1;
        }
        let read = |values: &[bool], l: Lit| values[l.node()] ^ l.is_complement();
        for n in (self.num_pis + 1)..self.nodes.len() {
            values[n] = match self.nodes[n] {
                XmgNode::Xor([a, b]) => read(&values, a) ^ read(&values, b),
                XmgNode::Maj([a, b, c]) => {
                    let (va, vb, vc) = (read(&values, a), read(&values, b), read(&values, c));
                    (va as u8 + vb as u8 + vc as u8) >= 2
                }
            };
        }
        let mut y = 0u64;
        for (j, po) in self.pos.iter().enumerate() {
            if read(&values, *po) {
                y |= 1 << j;
            }
        }
        y
    }

    /// Explicit truth tables of all outputs (use for `num_pis ≤ 20`).
    pub fn to_truth_tables(&self) -> MultiTruthTable {
        let n = self.num_pis;
        let mut outs = vec![TruthTable::zero(n); self.pos.len()];
        for x in 0..(1u64 << n) {
            let y = self.eval(x);
            for (j, t) in outs.iter_mut().enumerate() {
                if (y >> j) & 1 == 1 {
                    t.set(x, true);
                }
            }
        }
        MultiTruthTable::from_outputs(outs)
    }

    /// Logic level of every node (PIs at level 0).
    pub fn levels(&self) -> Vec<usize> {
        let mut lv = vec![0usize; self.nodes.len()];
        for n in (self.num_pis + 1)..self.nodes.len() {
            lv[n] = 1 + match self.nodes[n] {
                XmgNode::Xor([a, b]) => lv[a.node()].max(lv[b.node()]),
                XmgNode::Maj([a, b, c]) => lv[a.node()].max(lv[b.node()]).max(lv[c.node()]),
            };
        }
        lv
    }

    /// Depth (max output level).
    pub fn depth(&self) -> usize {
        let lv = self.levels();
        self.pos.iter().map(|po| lv[po.node()]).max().unwrap_or(0)
    }

    /// Fanout count per node (how many gate fanins / POs reference it).
    pub fn fanout_counts(&self) -> Vec<usize> {
        let mut counts = vec![0usize; self.nodes.len()];
        for n in self.gate_indices() {
            match self.nodes[n] {
                XmgNode::Xor([a, b]) => {
                    counts[a.node()] += 1;
                    counts[b.node()] += 1;
                }
                XmgNode::Maj([a, b, c]) => {
                    counts[a.node()] += 1;
                    counts[b.node()] += 1;
                    counts[c.node()] += 1;
                }
            }
        }
        for po in &self.pos {
            counts[po.node()] += 1;
        }
        counts
    }

    /// Removes unreachable gates; returns the compacted XMG.
    pub fn cleanup(&self) -> Xmg {
        let mut reach = vec![false; self.nodes.len()];
        let mut stack: Vec<usize> = self.pos.iter().map(|p| p.node()).collect();
        while let Some(n) = stack.pop() {
            if reach[n] {
                continue;
            }
            reach[n] = true;
            if self.is_gate(n) {
                match self.nodes[n] {
                    XmgNode::Xor([a, b]) => {
                        stack.push(a.node());
                        stack.push(b.node());
                    }
                    XmgNode::Maj([a, b, c]) => {
                        stack.push(a.node());
                        stack.push(b.node());
                        stack.push(c.node());
                    }
                }
            }
        }
        let mut out = Xmg::new(self.num_pis);
        let mut map: Vec<Lit> = vec![Lit::FALSE; self.nodes.len()];
        for (i, m) in map.iter_mut().enumerate().take(self.num_pis + 1) {
            *m = Lit::new(i, false);
        }
        let remap = |map: &[Lit], l: Lit| map[l.node()] ^ l.is_complement();
        for n in self.gate_indices() {
            if !reach[n] {
                continue;
            }
            map[n] = match self.nodes[n] {
                XmgNode::Xor([a, b]) => {
                    let (x, y) = (remap(&map, a), remap(&map, b));
                    out.xor(x, y)
                }
                XmgNode::Maj([a, b, c]) => {
                    let (x, y, z) = (remap(&map, a), remap(&map, b), remap(&map, c));
                    out.maj(x, y, z)
                }
            };
        }
        for po in &self.pos {
            let l = remap(&map, *po);
            out.add_po(l);
        }
        out
    }
}

impl fmt::Debug for Xmg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "Xmg({} PIs, {} XOR, {} MAJ, {} POs, depth {})",
            self.num_pis,
            self.num_xors(),
            self.num_majs(),
            self.pos.len(),
            self.depth()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gate_semantics() {
        let mut xmg = Xmg::new(3);
        let (a, b, c) = (xmg.pi(0), xmg.pi(1), xmg.pi(2));
        let x = xmg.xor(a, b);
        let m = xmg.maj(a, b, c);
        let n = xmg.and(a, b);
        let o = xmg.or(a, c);
        xmg.add_po(x);
        xmg.add_po(m);
        xmg.add_po(n);
        xmg.add_po(o);
        for input in 0..8u64 {
            let (va, vb, vc) = (input & 1, (input >> 1) & 1, (input >> 2) & 1);
            let y = xmg.eval(input);
            assert_eq!(y & 1, va ^ vb);
            assert_eq!((y >> 1) & 1, u64::from(va + vb + vc >= 2));
            assert_eq!((y >> 2) & 1, va & vb);
            assert_eq!((y >> 3) & 1, va | vc);
        }
    }

    #[test]
    fn xor_complement_canonicalization() {
        let mut xmg = Xmg::new(2);
        let (a, b) = (xmg.pi(0), xmg.pi(1));
        let f = xmg.xor(a, b);
        let g = xmg.xor(!a, b);
        assert_eq!(g, !f);
        assert_eq!(xmg.num_gates(), 1);
    }

    #[test]
    fn maj_self_duality() {
        let mut xmg = Xmg::new(3);
        let (a, b, c) = (xmg.pi(0), xmg.pi(1), xmg.pi(2));
        let f = xmg.maj(a, b, c);
        let g = xmg.maj(!a, !b, !c);
        assert_eq!(g, !f);
        assert_eq!(xmg.num_gates(), 1);
    }

    #[test]
    fn maj_trivial_rules() {
        let mut xmg = Xmg::new(2);
        let (a, b) = (xmg.pi(0), xmg.pi(1));
        assert_eq!(xmg.maj(a, a, b), a);
        assert_eq!(xmg.maj(a, !a, b), b);
        assert_eq!(xmg.num_gates(), 0);
    }

    #[test]
    fn mux_semantics() {
        let mut xmg = Xmg::new(3);
        let (s, t, e) = (xmg.pi(0), xmg.pi(1), xmg.pi(2));
        let m = xmg.mux(s, t, e);
        xmg.add_po(m);
        for input in 0..8u64 {
            let (vs, vt, ve) = (input & 1, (input >> 1) & 1, (input >> 2) & 1);
            assert_eq!(xmg.eval(input), if vs == 1 { vt } else { ve });
        }
    }

    #[test]
    fn cleanup_preserves_semantics() {
        let mut xmg = Xmg::new(3);
        let (a, b, c) = (xmg.pi(0), xmg.pi(1), xmg.pi(2));
        let _dead = xmg.maj(a, b, c);
        let live = xmg.xor(a, c);
        xmg.add_po(live);
        let cleaned = xmg.cleanup();
        assert_eq!(cleaned.num_gates(), 1);
        for x in 0..8u64 {
            assert_eq!(cleaned.eval(x), xmg.eval(x));
        }
    }

    #[test]
    fn truth_tables_match_eval() {
        let mut xmg = Xmg::new(4);
        let pis: Vec<Lit> = (0..4).map(|i| xmg.pi(i)).collect();
        let s = xmg.xor(pis[0], pis[1]);
        let t = xmg.maj(s, pis[2], !pis[3]);
        xmg.add_po(t);
        let tts = xmg.to_truth_tables();
        for x in 0..16u64 {
            assert_eq!(u64::from(tts.outputs()[0].get(x)), xmg.eval(x));
        }
    }
}
