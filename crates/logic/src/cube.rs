//! Product-term cubes over up to 64 variables.
//!
//! A [`Cube`] is a conjunction of literals. Each variable position takes one
//! of three values: positive literal (`1`), negative literal (`0`), or
//! absent (`-`). Cubes are the building blocks of the two-level [ESOP]
//! representation and map one-to-one onto mixed-polarity multiple-controlled
//! Toffoli gates during ESOP-based reversible synthesis.
//!
//! [ESOP]: crate::esop::Esop

use std::fmt;

/// A product term (cube) over at most 64 variables.
///
/// Internally two bit masks: `care` marks the variables that appear in the
/// cube and `polarity` gives their phase (only meaningful where `care` is
/// set).
///
/// # Example
///
/// ```
/// use qda_logic::cube::Cube;
///
/// // x0 & !x2
/// let c = Cube::tautology().with_literal(0, true).with_literal(2, false);
/// assert!(c.eval(0b001));
/// assert!(!c.eval(0b101));
/// assert_eq!(c.num_literals(), 2);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Cube {
    care: u64,
    polarity: u64,
}

impl Cube {
    /// The empty product (constant one / tautology cube).
    pub fn tautology() -> Self {
        Self {
            care: 0,
            polarity: 0,
        }
    }

    /// Builds a cube from raw masks.
    ///
    /// Bits of `polarity` outside `care` are ignored (normalized away).
    pub fn from_masks(care: u64, polarity: u64) -> Self {
        Self {
            care,
            polarity: polarity & care,
        }
    }

    /// The minterm cube fixing all `num_vars` variables to the bits of `x`.
    ///
    /// # Panics
    ///
    /// Panics if `num_vars > 64`.
    pub fn minterm(num_vars: usize, x: u64) -> Self {
        assert!(num_vars <= 64);
        let care = if num_vars == 64 {
            u64::MAX
        } else {
            (1u64 << num_vars) - 1
        };
        Self::from_masks(care, x)
    }

    /// Returns a copy with the literal on `var` set to `positive`.
    ///
    /// # Panics
    ///
    /// Panics if `var >= 64`.
    #[must_use]
    pub fn with_literal(mut self, var: usize, positive: bool) -> Self {
        assert!(var < 64);
        self.care |= 1 << var;
        if positive {
            self.polarity |= 1 << var;
        } else {
            self.polarity &= !(1 << var);
        }
        self
    }

    /// Returns a copy with `var` removed from the cube.
    #[must_use]
    pub fn without_var(mut self, var: usize) -> Self {
        self.care &= !(1 << var);
        self.polarity &= !(1 << var);
        self
    }

    /// Care mask: bit `i` set iff variable `i` appears.
    pub fn care(&self) -> u64 {
        self.care
    }

    /// Polarity mask (subset of the care mask).
    pub fn polarity(&self) -> u64 {
        self.polarity
    }

    /// Whether variable `var` appears in the cube.
    pub fn contains(&self, var: usize) -> bool {
        (self.care >> var) & 1 == 1
    }

    /// The phase of `var` if it appears.
    pub fn literal(&self, var: usize) -> Option<bool> {
        self.contains(var).then(|| (self.polarity >> var) & 1 == 1)
    }

    /// Number of literals.
    pub fn num_literals(&self) -> usize {
        self.care.count_ones() as usize
    }

    /// Evaluates the cube on assignment `x`.
    pub fn eval(&self, x: u64) -> bool {
        (x ^ self.polarity) & self.care == 0
    }

    /// Iterator over `(var, positive)` literals, ascending by variable.
    pub fn literals(&self) -> impl Iterator<Item = (usize, bool)> + '_ {
        (0..64)
            .filter(move |v| self.contains(*v))
            .map(move |v| (v, (self.polarity >> v) & 1 == 1))
    }

    /// The cube containing the literals common to `self` and `other`
    /// (same variable, same phase).
    pub fn common(&self, other: &Cube) -> Cube {
        let both = self.care & other.care;
        let agree = both & !(self.polarity ^ other.polarity);
        Cube::from_masks(agree, self.polarity)
    }

    /// Removes from `self` every literal present in `sub` (used when a
    /// shared sub-cube has been factored onto an ancilla).
    #[must_use]
    pub fn strip(&self, sub: &Cube) -> Cube {
        let drop = sub.care & self.care & !(self.polarity ^ sub.polarity);
        Cube::from_masks(self.care & !drop, self.polarity)
    }

    /// ESOP distance between two cubes: the number of variable positions
    /// whose three-valued entries (`0`, `1`, `-`) differ.
    pub fn distance(&self, other: &Cube) -> u32 {
        let care_diff = self.care ^ other.care;
        let both = self.care & other.care;
        let pol_diff = both & (self.polarity ^ other.polarity);
        (care_diff | pol_diff).count_ones()
    }

    /// Merges two cubes at ESOP distance 1 into the single equivalent cube
    /// (`a ⊕ b` is again a cube when they differ in exactly one position).
    ///
    /// Returns `None` if the distance is not 1.
    pub fn merge_distance_one(&self, other: &Cube) -> Option<Cube> {
        if self.distance(other) != 1 {
            return None;
        }
        let care_diff = self.care ^ other.care;
        if care_diff != 0 {
            // One cube has a literal on v, the other does not.
            let v = care_diff.trailing_zeros() as usize;
            let (with, _without) = if self.contains(v) {
                (self, other)
            } else {
                (other, self)
            };
            // c ⊕ (l & c) = !l & c : flip the phase of the literal.
            let positive = with.literal(v).expect("literal present");
            Some(with.without_var(v).with_literal(v, !positive))
        } else {
            // Same care set, one phase differs: x&c ⊕ !x&c = c.
            let both = self.care & other.care;
            let pol_diff = both & (self.polarity ^ other.polarity);
            let v = pol_diff.trailing_zeros() as usize;
            Some(self.without_var(v))
        }
    }

    /// `exorlink-2`: rewrites a distance-2 cube pair `{a, b}` into an
    /// equivalent pair. For each of the two differing positions there is one
    /// alternative pair; `which` in `{0, 1}` selects it.
    ///
    /// Returns `None` if the distance is not 2.
    ///
    /// This is the classic move of exorcism-style ESOP minimization
    /// (Mishchenko & Perkowski, Reed-Muller workshop 2001): the rewritten
    /// pair sometimes enables new distance-0/1 merges.
    pub fn exorlink2(&self, other: &Cube, which: usize) -> Option<(Cube, Cube)> {
        if self.distance(other) != 2 {
            return None;
        }
        let positions: Vec<usize> = {
            let care_diff = self.care ^ other.care;
            let both = self.care & other.care;
            let pol_diff = both & (self.polarity ^ other.polarity);
            (0..64)
                .filter(|v| ((care_diff | pol_diff) >> v) & 1 == 1)
                .collect()
        };
        debug_assert_eq!(positions.len(), 2);
        // Write a = A_p A_q C and b = B_p B_q C (C: the agreeing rest). With
        // D_v the difference entry χ_{A_v} ⊕ χ_{B_v}:
        //   a ⊕ b = A_p D_q C ⊕ D_p B_q C   (which = 0)
        //         = D_p A_q C ⊕ B_p D_q C   (which = 1)
        let (p, q) = (positions[0], positions[1]);
        let d_p = entry_difference(entry(self, p), entry(other, p))?;
        let d_q = entry_difference(entry(self, q), entry(other, q))?;
        if which.is_multiple_of(2) {
            Some((set_entry(self, q, d_q), set_entry(other, p, d_p)))
        } else {
            Some((set_entry(self, p, d_p), set_entry(other, q, d_q)))
        }
    }

    /// Whether `self` covers `other` (every assignment of `other` satisfies
    /// `self`); i.e. `self`'s literals are a subset of `other`'s.
    pub fn covers(&self, other: &Cube) -> bool {
        self.care & other.care == self.care && (self.polarity ^ other.polarity) & self.care == 0
    }

    /// Renders the cube over `num_vars` positions as a `01-` string,
    /// variable 0 first.
    pub fn to_pla_string(&self, num_vars: usize) -> String {
        (0..num_vars)
            .map(|v| match self.literal(v) {
                Some(true) => '1',
                Some(false) => '0',
                None => '-',
            })
            .collect()
    }
}

/// Three-valued cube entry.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum Entry {
    Zero,
    One,
    DontCare,
}

fn entry(c: &Cube, v: usize) -> Entry {
    match c.literal(v) {
        Some(true) => Entry::One,
        Some(false) => Entry::Zero,
        None => Entry::DontCare,
    }
}

fn set_entry(c: &Cube, v: usize, e: Entry) -> Cube {
    match e {
        Entry::Zero => c.with_literal(v, false),
        Entry::One => c.with_literal(v, true),
        Entry::DontCare => c.without_var(v),
    }
}

/// For differing entries a != b, the "difference" entry d such that the
/// characteristic functions satisfy χ_a ⊕ χ_b = χ_d on that variable:
/// {0,1} → -, {0,-} → 1, {1,-} → 0.
fn entry_difference(a: Entry, b: Entry) -> Option<Entry> {
    use Entry::*;
    match (a, b) {
        (Zero, One) | (One, Zero) => Some(DontCare),
        (Zero, DontCare) | (DontCare, Zero) => Some(One),
        (One, DontCare) | (DontCare, One) => Some(Zero),
        _ => None,
    }
}

impl fmt::Debug for Cube {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "Cube({})",
            self.to_pla_string(64.min(64 - self.care.leading_zeros() as usize + 1))
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn eval_pair(a: &Cube, b: &Cube, x: u64) -> bool {
        a.eval(x) ^ b.eval(x)
    }

    #[test]
    fn minterm_and_eval() {
        let c = Cube::minterm(4, 0b1010);
        assert!(c.eval(0b1010));
        assert!(!c.eval(0b1011));
        assert_eq!(c.num_literals(), 4);
    }

    #[test]
    fn distance_counts_three_valued_positions() {
        let a = Cube::tautology()
            .with_literal(0, true)
            .with_literal(1, false);
        let b = Cube::tautology()
            .with_literal(0, false)
            .with_literal(1, false);
        assert_eq!(a.distance(&b), 1);
        let c = Cube::tautology().with_literal(1, false);
        assert_eq!(a.distance(&c), 1);
        assert_eq!(b.distance(&c), 1);
        let d = Cube::tautology().with_literal(2, true);
        assert_eq!(a.distance(&d), 3);
        assert_eq!(a.distance(&a), 0);
    }

    #[test]
    fn merge_distance_one_is_xor_equivalent() {
        let cases = [
            (
                Cube::tautology()
                    .with_literal(0, true)
                    .with_literal(1, true),
                Cube::tautology()
                    .with_literal(0, false)
                    .with_literal(1, true),
            ),
            (
                Cube::tautology()
                    .with_literal(0, true)
                    .with_literal(1, true),
                Cube::tautology().with_literal(1, true),
            ),
            (Cube::tautology().with_literal(2, false), Cube::tautology()),
        ];
        for (a, b) in cases {
            let m = a.merge_distance_one(&b).expect("distance 1");
            for x in 0..16u64 {
                assert_eq!(m.eval(x), eval_pair(&a, &b, x), "a={a:?} b={b:?} x={x}");
            }
        }
    }

    #[test]
    fn merge_rejects_wrong_distance() {
        let a = Cube::minterm(3, 0);
        let b = Cube::minterm(3, 3);
        assert_eq!(a.distance(&b), 2);
        assert!(a.merge_distance_one(&b).is_none());
    }

    #[test]
    fn exorlink2_preserves_function() {
        let pairs = [
            (Cube::minterm(3, 0b000), Cube::minterm(3, 0b011)),
            (
                Cube::tautology().with_literal(0, true),
                Cube::tautology().with_literal(1, false),
            ),
            (
                Cube::tautology()
                    .with_literal(0, true)
                    .with_literal(2, true),
                Cube::tautology()
                    .with_literal(0, false)
                    .with_literal(2, false),
            ),
        ];
        for (a, b) in pairs {
            for which in 0..2 {
                let (a1, b1) = a.exorlink2(&b, which).expect("distance 2");
                for x in 0..8u64 {
                    assert_eq!(
                        eval_pair(&a, &b, x),
                        eval_pair(&a1, &b1, x),
                        "a={a:?} b={b:?} which={which} x={x}"
                    );
                }
            }
        }
    }

    #[test]
    fn common_and_strip() {
        let a = Cube::tautology()
            .with_literal(0, true)
            .with_literal(1, false)
            .with_literal(2, true);
        let b = Cube::tautology()
            .with_literal(0, true)
            .with_literal(1, true)
            .with_literal(2, true);
        let c = a.common(&b);
        assert_eq!(c.num_literals(), 2);
        assert_eq!(c.literal(0), Some(true));
        assert_eq!(c.literal(2), Some(true));
        let s = a.strip(&c);
        assert_eq!(s.num_literals(), 1);
        assert_eq!(s.literal(1), Some(false));
    }

    #[test]
    fn covers_subset_semantics() {
        let big = Cube::tautology().with_literal(0, true);
        let small = Cube::tautology()
            .with_literal(0, true)
            .with_literal(1, false);
        assert!(big.covers(&small));
        assert!(!small.covers(&big));
        assert!(Cube::tautology().covers(&small));
    }

    #[test]
    fn pla_rendering() {
        let c = Cube::tautology()
            .with_literal(0, true)
            .with_literal(3, false);
        assert_eq!(c.to_pla_string(4), "1--0");
    }
}
