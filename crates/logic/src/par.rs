//! Deterministic fork–join helper for the sharded inner engines.
//!
//! Every parallel loop in the workspace (EXORCISM's diversified restarts,
//! the peephole optimizer's support-disjoint components, the resynthesis
//! candidate portfolio) has the same shape: `n` independent jobs whose
//! results must be consumed **in job-index order** so a parallel run is
//! byte-identical to a serial one. [`run_indexed`] is that shape: it fans
//! the indices out over `std::thread::scope` workers and returns the
//! results ordered by index, so callers fold them exactly as the serial
//! loop would.
//!
//! The worker count comes from the `QDA_WORKERS` environment variable
//! (`0` or unset → one worker per available CPU); `QDA_WORKERS=1` forces
//! the fully serial path, which the CI worker-count matrix diffs against
//! `QDA_WORKERS=2` to pin determinism.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Number of workers parallel loops should use: `QDA_WORKERS` if set and
/// nonzero, otherwise one per available CPU.
#[must_use]
pub fn worker_count() -> usize {
    match std::env::var("QDA_WORKERS") {
        Ok(v) => match v.trim().parse::<usize>() {
            Ok(0) | Err(_) => available_cpus(),
            Ok(n) => n,
        },
        Err(_) => available_cpus(),
    }
}

fn available_cpus() -> usize {
    std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
}

/// Runs `f(0..n)` and returns the results in index order.
///
/// With one worker (or one job) this is a plain serial loop; otherwise
/// the indices are dealt to scoped threads from an atomic counter. Either
/// way the returned `Vec` is ordered by job index, so folding it
/// reproduces the serial loop's visit order bit-for-bit — determinism is
/// the caller's to keep only in `f` itself (no shared mutable state, no
/// time or thread-id dependence).
pub fn run_indexed<T, F>(n: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let workers = worker_count().min(n);
    if workers <= 1 {
        return (0..n).map(f).collect();
    }
    let next = AtomicUsize::new(0);
    let slots: Mutex<Vec<Option<T>>> = Mutex::new((0..n).map(|_| None).collect());
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let result = f(i);
                slots.lock().expect("worker panicked holding results")[i] = Some(result);
            });
        }
    });
    slots
        .into_inner()
        .expect("worker panicked holding results")
        .into_iter()
        .map(|r| r.expect("every index was dealt to exactly one worker"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_come_back_in_index_order() {
        let out = run_indexed(64, |i| i * i);
        assert_eq!(out, (0..64).map(|i| i * i).collect::<Vec<_>>());
    }

    #[test]
    fn zero_jobs_is_fine() {
        let out: Vec<usize> = run_indexed(0, |i| i);
        assert!(out.is_empty());
    }

    #[test]
    fn single_job_runs_inline() {
        assert_eq!(run_indexed(1, |i| i + 7), vec![7]);
    }

    #[test]
    fn worker_count_is_positive() {
        assert!(worker_count() >= 1);
    }
}
