//! Deterministic fork–join on a **persistent worker pool**.
//!
//! Every parallel loop in the workspace (EXORCISM's diversified restarts,
//! the peephole optimizer's support-disjoint components, the resynthesis
//! candidate portfolio, batch-simulation lane sweeps, DSE job racing) has
//! the same shape: `n` independent jobs whose results must be consumed
//! **in job-index order** so a parallel run is byte-identical to a serial
//! one. [`run_indexed`] is that shape.
//!
//! # Pool design
//!
//! Earlier revisions spawned `std::thread::scope` workers per call, which
//! charged every EXORCISM restart, optimizer window, and resynthesis
//! portfolio a thread spawn/join. The pool is now **persistent and lazy**:
//! the first parallel call spawns `QDA_WORKERS - 1` background workers
//! (the caller itself is the remaining worker) that park on a condvar and
//! live for the process. Steady-state parallel calls spawn nothing —
//! [`spawned_threads`] exposes the lifetime spawn count so benches can
//! assert exactly that.
//!
//! * **Queue discipline.** A single injector queue (FIFO `VecDeque` under
//!   a mutex) holds type-erased jobs. Workers *peek* rather than pop: any
//!   number of workers (up to the job's cap) join the front job and deal
//!   themselves indices from its atomic counter, so one big batch is
//!   drained by every idle worker at once. A job leaves the queue when
//!   its indices are exhausted.
//! * **Caller helps.** The thread that calls [`run_indexed`] enqueues its
//!   job, then participates in it like any worker, and finally waits only
//!   for indices claimed by other workers. A job is therefore completed
//!   even if every background worker is busy — which is also what makes
//!   **nesting** safe: a pool worker that calls `run_indexed` from inside
//!   a job (DSE → resynthesis portfolio) drains its own inner job
//!   itself; there is no circular wait, hence no deadlock.
//! * **One machine-wide budget.** All engines share the same
//!   `QDA_WORKERS` threads; racing DSE configurations can no longer
//!   multiply the budget by each spinning up a full-width shard set.
//!   [`with_worker_cap`] narrows the budget for a scope (and is inherited
//!   by workers executing that scope's jobs), which the scaling bench
//!   uses to measure 1/2/N-worker rows inside one process.
//! * **Determinism.** Results are returned in index order and callers
//!   fold them exactly as the serial loop would (strictly-better merges
//!   stay with the caller), so parallel output is byte-identical to
//!   serial at any worker count. Panics in a job are caught, forwarded,
//!   and re-raised on the calling thread.
//!
//! The worker count comes from the `QDA_WORKERS` environment variable,
//! which must be a positive integer when set (unset → one worker per
//! available CPU); `QDA_WORKERS=1` forces the fully serial path, which
//! the CI worker matrix diffs against 2 and 4 workers to pin determinism.
//! The variable is read when the pool first initializes; changing it
//! afterwards has no effect on the running process.

use std::cell::{Cell, UnsafeCell};
use std::collections::VecDeque;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, Once, OnceLock};

/// Number of workers parallel loops may use: `QDA_WORKERS` if set,
/// otherwise one per available CPU.
///
/// # Panics
///
/// Panics if `QDA_WORKERS` is set to `0`, an empty string, or anything
/// that is not a positive integer — a silent fallback would hide typos in
/// deployment configs (the old behavior mapped `QDA_WORKERS=O2` to "all
/// CPUs" without a word).
#[must_use]
pub fn worker_count() -> usize {
    match parse_workers(std::env::var("QDA_WORKERS").ok().as_deref()) {
        Ok(Some(n)) => n,
        Ok(None) => available_cpus(),
        Err(message) => panic!("{message}"),
    }
}

/// Strict `QDA_WORKERS` parsing: `None` (unset) means "use the CPU
/// count", anything set must be a positive integer.
fn parse_workers(raw: Option<&str>) -> Result<Option<usize>, String> {
    let Some(raw) = raw else { return Ok(None) };
    match raw.trim().parse::<usize>() {
        Ok(0) => Err(
            "QDA_WORKERS must be a positive integer; 0 is not a worker count \
                      (unset the variable to use one worker per available CPU)"
                .to_string(),
        ),
        Ok(n) => Ok(Some(n)),
        Err(_) => Err(format!(
            "QDA_WORKERS must be a positive integer, got {raw:?} \
             (unset the variable to use one worker per available CPU)"
        )),
    }
}

fn available_cpus() -> usize {
    std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
}

/// Total OS threads the pool has spawned since process start (0 until the
/// first parallel call; constant afterwards). Benches assert this stays
/// flat across steady-state work — the hot path never spawns.
#[must_use]
pub fn spawned_threads() -> usize {
    POOL.get().map_or(0, |p| p.spawned.load(Ordering::Relaxed))
}

thread_local! {
    /// Per-thread participant cap, inherited by pool workers from the job
    /// they execute so nested `run_indexed` calls respect the same scope.
    static WORKER_CAP: Cell<usize> = const { Cell::new(usize::MAX) };
}

/// Runs `f` with parallel calls on this thread (and on pool workers
/// executing jobs submitted by it) capped at `cap` participants,
/// restoring the previous cap afterwards — even on panic.
///
/// Caps nest by taking the minimum, so an inner scope can narrow but
/// never widen the budget. The scaling bench uses this to measure
/// 1/2/N-worker rows inside one process without re-execing.
///
/// # Panics
///
/// Panics if `cap` is zero (someone has to run the jobs).
pub fn with_worker_cap<R>(cap: usize, f: impl FnOnce() -> R) -> R {
    assert!(cap >= 1, "worker cap must be at least 1");
    struct Restore(usize);
    impl Drop for Restore {
        fn drop(&mut self) {
            WORKER_CAP.set(self.0);
        }
    }
    let prev = WORKER_CAP.get();
    let _restore = Restore(prev);
    WORKER_CAP.set(cap.min(prev));
    f()
}

/// One type-erased batch of indexed jobs on the injector queue.
///
/// # Safety invariants
///
/// `data` points into the stack frame of the `run_indexed` call that owns
/// this job. It is dereferenced only between claiming an index `i < n`
/// from `next` and incrementing `done` for that index; the owner blocks
/// until `done == n` before its frame unwinds, so every dereference
/// happens-before the pointee dies. Workers that arrive later observe
/// `next >= n` and never touch `data`.
struct JobShared {
    /// Number of indices.
    n: usize,
    /// Max concurrent participants (explicit [`with_worker_cap`] budget;
    /// `usize::MAX` when uncapped). Inherited by participating workers
    /// for the duration of the job, so nested parallel calls see it.
    cap: usize,
    /// Next unclaimed index (may exceed `n` after exhaustion).
    next: AtomicUsize,
    /// Participants admitted so far (the submitting caller counts as 1).
    joined: AtomicUsize,
    /// Indices fully executed. The release increments here, paired with
    /// the owner's acquire load, order every slot write before the
    /// owner's reads.
    done: AtomicUsize,
    /// Type-erased `&RunCtx<T, F>` on the owner's stack.
    data: *const (),
    /// Monomorphized runner: executes `f(i)` and stores slot `i`.
    run_one: unsafe fn(*const (), usize),
    /// First panic payload captured from any participant.
    panic: Mutex<Option<Box<dyn std::any::Any + Send>>>,
    /// Parking lot for the owner while other workers finish their claimed
    /// indices (the mutex guards no data — `done` is the condition).
    finished: Mutex<()>,
    finished_cv: Condvar,
}

// SAFETY: `data` is only dereferenced under the claim/`done` protocol
// documented on the struct; `run_one` requires `F: Sync` and `T: Send`
// at construction, so sharing the context across threads is sound.
unsafe impl Send for JobShared {}
unsafe impl Sync for JobShared {}

impl JobShared {
    /// Whether every index has been claimed (the job can leave the queue).
    fn exhausted(&self) -> bool {
        self.next.load(Ordering::Relaxed) >= self.n
    }

    /// Tries to join as one more participant, respecting the cap.
    fn try_admit(&self) -> bool {
        if self.exhausted() {
            return false;
        }
        self.joined
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |j| {
                (j < self.cap).then_some(j + 1)
            })
            .is_ok()
    }

    /// Deals indices from `next` until exhaustion, running each one.
    /// Panics in `f` are captured (first wins) and counted as done, so
    /// the owner always unblocks.
    fn participate(&self) {
        loop {
            let i = self.next.fetch_add(1, Ordering::Relaxed);
            if i >= self.n {
                return;
            }
            // SAFETY: `i < n` was claimed exactly once; per the struct
            // invariant the pointee outlives this call because the owner
            // waits for the matching `done` increment below.
            let outcome =
                catch_unwind(AssertUnwindSafe(|| unsafe { (self.run_one)(self.data, i) }));
            if let Err(payload) = outcome {
                let mut slot = self.panic.lock().expect("panic slot poisoned");
                slot.get_or_insert(payload);
            }
            if self.done.fetch_add(1, Ordering::Release) + 1 == self.n {
                // Hold the lock while notifying so the owner cannot miss
                // the wakeup between its condition check and its wait.
                let _guard = self.finished.lock().expect("finish lock poisoned");
                self.finished_cv.notify_all();
            }
        }
    }
}

/// The process-wide pool: injector queue + parked background workers.
struct Pool {
    queue: Mutex<VecDeque<Arc<JobShared>>>,
    work_cv: Condvar,
    /// Background workers to spawn (`worker_count() - 1`; the caller of
    /// each parallel region is the remaining worker).
    background: usize,
    /// Lifetime thread-spawn count (see [`spawned_threads`]).
    spawned: AtomicUsize,
}

static POOL: OnceLock<Pool> = OnceLock::new();
static SPAWN_WORKERS: Once = Once::new();

/// The lazily-initialized pool; spawns the background workers exactly
/// once, on the first call.
fn pool() -> &'static Pool {
    let p = POOL.get_or_init(|| Pool {
        queue: Mutex::new(VecDeque::new()),
        work_cv: Condvar::new(),
        background: worker_count().saturating_sub(1),
        spawned: AtomicUsize::new(0),
    });
    SPAWN_WORKERS.call_once(|| {
        for i in 0..p.background {
            std::thread::Builder::new()
                .name(format!("qda-par-{i}"))
                .spawn(move || worker_loop(p))
                .expect("failed to spawn pool worker");
            p.spawned.fetch_add(1, Ordering::Relaxed);
        }
    });
    p
}

/// Background worker: park until a job with capacity appears, join it,
/// drain it, prune it, repeat — for the life of the process.
fn worker_loop(pool: &'static Pool) {
    loop {
        let job = {
            let mut q = pool.queue.lock().expect("pool queue poisoned");
            loop {
                q.retain(|j| !j.exhausted());
                if let Some(j) = q.iter().find(|j| j.try_admit()) {
                    break Arc::clone(j);
                }
                q = pool.work_cv.wait(q).expect("pool queue poisoned");
            }
        };
        // Execute under the job's cap so nested parallel calls made by
        // `f` stay inside the submitting scope's budget.
        WORKER_CAP.set(job.cap);
        job.participate();
        WORKER_CAP.set(usize::MAX);
        let mut q = pool.queue.lock().expect("pool queue poisoned");
        q.retain(|j| !Arc::ptr_eq(j, &job));
    }
}

/// A result slot, written exactly once by whichever participant claims
/// its index.
struct Slot<T>(UnsafeCell<Option<T>>);

// SAFETY: the claim protocol guarantees at most one writer per slot, and
// the owner reads only after the `done` acquire/release handshake.
unsafe impl<T: Send> Sync for Slot<T> {}

/// The borrowed context a job's `data` pointer type-erases.
struct RunCtx<'a, T, F> {
    f: &'a F,
    slots: &'a [Slot<T>],
}

/// Monomorphized job runner behind [`JobShared::run_one`].
///
/// # Safety
///
/// `data` must point to a live `RunCtx<T, F>` and `i` must be a
/// uniquely-claimed index below `slots.len()`.
unsafe fn run_one<T, F>(data: *const (), i: usize)
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let ctx = &*data.cast::<RunCtx<'_, T, F>>();
    let value = (ctx.f)(i);
    *ctx.slots[i].0.get() = Some(value);
}

/// Runs `f(0..n)` on the persistent worker pool and returns the results
/// in index order.
///
/// With one worker (or one job) this is a plain serial loop — no pool is
/// touched, `QDA_WORKERS=1` never starts a thread. Otherwise the job is
/// pushed on the injector queue, idle workers unpark to help, and the
/// caller deals itself indices alongside them (see the module docs for
/// the full discipline). Either way the returned `Vec` is ordered by job
/// index, so folding it reproduces the serial loop's visit order
/// bit-for-bit — determinism is the caller's to keep only in `f` itself
/// (no shared mutable state, no time or thread-id dependence).
///
/// Nesting is allowed and deadlock-free: a job may itself call
/// `run_indexed`, and the inner call is drained by its own submitter if
/// every other worker is busy.
///
/// # Panics
///
/// Re-raises the first panic any job raised (after all claimed indices
/// finished), and panics on an invalid `QDA_WORKERS` (see
/// [`worker_count`]).
pub fn run_indexed<T, F>(n: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let cap = WORKER_CAP.get();
    if n <= 1 || cap <= 1 || worker_count() <= 1 {
        return (0..n).map(f).collect();
    }
    let pool = pool();
    let slots: Vec<Slot<T>> = (0..n).map(|_| Slot(UnsafeCell::new(None))).collect();
    let ctx = RunCtx {
        f: &f,
        slots: &slots,
    };
    let job = Arc::new(JobShared {
        n,
        cap,
        next: AtomicUsize::new(0),
        joined: AtomicUsize::new(1),
        done: AtomicUsize::new(0),
        data: std::ptr::from_ref(&ctx).cast(),
        run_one: run_one::<T, F>,
        panic: Mutex::new(None),
        finished: Mutex::new(()),
        finished_cv: Condvar::new(),
    });
    {
        let mut q = pool.queue.lock().expect("pool queue poisoned");
        q.push_back(Arc::clone(&job));
    }
    pool.work_cv.notify_all();
    job.participate();
    // Wait for indices claimed by other workers. The acquire load pairs
    // with each participant's release increment, ordering all slot
    // writes before the reads below.
    {
        let mut guard = job.finished.lock().expect("finish lock poisoned");
        while job.done.load(Ordering::Acquire) < n {
            guard = job.finished_cv.wait(guard).expect("finish lock poisoned");
        }
    }
    {
        let mut q = pool.queue.lock().expect("pool queue poisoned");
        q.retain(|j| !Arc::ptr_eq(j, &job));
    }
    if let Some(payload) = job.panic.lock().expect("panic slot poisoned").take() {
        resume_unwind(payload);
    }
    drop(job);
    slots
        .into_iter()
        .map(|s| {
            s.0.into_inner()
                .expect("every index was dealt to exactly one participant")
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_come_back_in_index_order() {
        let out = run_indexed(64, |i| i * i);
        assert_eq!(out, (0..64).map(|i| i * i).collect::<Vec<_>>());
    }

    #[test]
    fn zero_jobs_is_fine() {
        let out: Vec<usize> = run_indexed(0, |i| i);
        assert!(out.is_empty());
    }

    #[test]
    fn single_job_runs_inline() {
        assert_eq!(run_indexed(1, |i| i + 7), vec![7]);
    }

    #[test]
    fn worker_count_is_positive() {
        assert!(worker_count() >= 1);
    }

    #[test]
    fn strict_parsing_accepts_positive_integers() {
        assert_eq!(parse_workers(None), Ok(None));
        assert_eq!(parse_workers(Some("1")), Ok(Some(1)));
        assert_eq!(parse_workers(Some(" 8 ")), Ok(Some(8)));
    }

    #[test]
    fn strict_parsing_rejects_zero_and_garbage() {
        for bad in ["0", "", "  ", "two", "O2", "-1", "1.5"] {
            let err = parse_workers(Some(bad)).expect_err(bad);
            assert!(err.contains("QDA_WORKERS"), "{err}");
        }
    }

    #[test]
    fn worker_cap_of_one_is_serial_and_restores() {
        let out = with_worker_cap(1, || run_indexed(16, |i| i * 3));
        assert_eq!(out, (0..16).map(|i| i * 3).collect::<Vec<_>>());
        assert_eq!(WORKER_CAP.get(), usize::MAX, "cap restored");
    }

    #[test]
    fn worker_cap_restores_on_panic() {
        let caught = catch_unwind(AssertUnwindSafe(|| {
            with_worker_cap(2, || panic!("boom"));
        }));
        assert!(caught.is_err());
        assert_eq!(WORKER_CAP.get(), usize::MAX, "cap restored after panic");
    }

    #[test]
    fn caps_nest_by_minimum() {
        with_worker_cap(4, || {
            with_worker_cap(8, || assert_eq!(WORKER_CAP.get(), 4));
            assert_eq!(WORKER_CAP.get(), 4);
        });
    }

    #[test]
    fn pool_panics_propagate_and_pool_survives() {
        for round in 0..3 {
            let caught = catch_unwind(AssertUnwindSafe(|| {
                run_indexed(32, |i| {
                    assert!(i != 17, "round {round}: planted failure");
                    i
                })
            }));
            assert!(caught.is_err(), "planted panic must propagate");
            // The pool keeps working after a panicked job.
            assert_eq!(
                run_indexed(8, |i| i + round),
                (round..8 + round).collect::<Vec<_>>()
            );
        }
    }

    #[test]
    fn nested_runs_complete_without_deadlock() {
        let out = run_indexed(4, |outer| {
            let inner = run_indexed(6, move |i| outer * 100 + i);
            inner.iter().sum::<usize>()
        });
        let expected: Vec<usize> = (0..4)
            .map(|outer| (0..6).map(|i| outer * 100 + i).sum())
            .collect();
        assert_eq!(out, expected);
    }

    #[test]
    fn steady_state_spawns_no_threads() {
        let _ = run_indexed(16, |i| i); // warm the pool
        let before = spawned_threads();
        for _ in 0..32 {
            let _ = run_indexed(16, |i| i * 2);
        }
        assert_eq!(spawned_threads(), before, "hot path must not spawn");
    }
}
