//! Exclusive sum-of-products (ESOP) expressions.
//!
//! An [`Esop`] is a set of [`Cube`]s combined by XOR; a [`MultiEsop`]
//! additionally tags every cube with the set of outputs it feeds. Multi-output
//! ESOPs are the exchange format between classical ESOP extraction
//! (`qda-classical::esop_extract` / `exorcism`) and ESOP-based reversible
//! synthesis (`qda-revsynth::esop`), where every cube becomes one
//! mixed-polarity multiple-controlled Toffoli gate.

use crate::cube::Cube;
use crate::tt::{MultiTruthTable, TruthTable};
use std::fmt;

/// A single-output ESOP expression.
///
/// # Example
///
/// ```
/// use qda_logic::{Cube, Esop};
///
/// // x0 ⊕ x1 as two cubes.
/// let esop = Esop::from_cubes(2, vec![
///     Cube::tautology().with_literal(0, true),
///     Cube::tautology().with_literal(1, true),
/// ]);
/// assert!(esop.eval(0b01));
/// assert!(!esop.eval(0b11));
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Esop {
    num_vars: usize,
    cubes: Vec<Cube>,
}

impl Esop {
    /// The constant-zero ESOP (no cubes).
    pub fn zero(num_vars: usize) -> Self {
        Self {
            num_vars,
            cubes: Vec::new(),
        }
    }

    /// Builds an ESOP from explicit cubes.
    pub fn from_cubes(num_vars: usize, cubes: Vec<Cube>) -> Self {
        Self { num_vars, cubes }
    }

    /// The trivial minterm ESOP of a truth table (one cube per satisfying
    /// assignment). Exponential; starting point for minimization only.
    pub fn from_truth_table(tt: &TruthTable) -> Self {
        let cubes = tt.ones().map(|x| Cube::minterm(tt.num_vars(), x)).collect();
        Self {
            num_vars: tt.num_vars(),
            cubes,
        }
    }

    /// Number of input variables.
    pub fn num_vars(&self) -> usize {
        self.num_vars
    }

    /// The cubes of the expression.
    pub fn cubes(&self) -> &[Cube] {
        &self.cubes
    }

    /// Number of cubes.
    pub fn len(&self) -> usize {
        self.cubes.len()
    }

    /// Whether the expression has no cubes (constant zero).
    pub fn is_empty(&self) -> bool {
        self.cubes.is_empty()
    }

    /// Total literal count.
    pub fn num_literals(&self) -> usize {
        self.cubes.iter().map(Cube::num_literals).sum()
    }

    /// Evaluates the ESOP on assignment `x`.
    pub fn eval(&self, x: u64) -> bool {
        self.cubes.iter().fold(false, |acc, c| acc ^ c.eval(x))
    }

    /// Expands back to an explicit truth table (for verification).
    pub fn to_truth_table(&self) -> TruthTable {
        TruthTable::from_fn(self.num_vars, |x| self.eval(x))
    }

    /// Removes duplicate cube pairs (distance 0 cancels under XOR) and
    /// greedily merges distance-1 pairs until a fixpoint. Cheap local
    /// cleanup; full exorcism lives in `qda-classical`.
    pub fn reduce(&mut self) {
        loop {
            // Distance-0: cancel pairs.
            self.cubes.sort_unstable();
            let mut cancelled = Vec::with_capacity(self.cubes.len());
            let mut i = 0;
            while i < self.cubes.len() {
                if i + 1 < self.cubes.len() && self.cubes[i] == self.cubes[i + 1] {
                    i += 2; // pair cancels
                } else {
                    cancelled.push(self.cubes[i]);
                    i += 1;
                }
            }
            self.cubes = cancelled;
            // Distance-1: merge the first pair found.
            let mut merged = false;
            'outer: for i in 0..self.cubes.len() {
                for j in (i + 1)..self.cubes.len() {
                    if let Some(m) = self.cubes[i].merge_distance_one(&self.cubes[j]) {
                        self.cubes[i] = m;
                        self.cubes.swap_remove(j);
                        merged = true;
                        break 'outer;
                    }
                }
            }
            if !merged {
                break;
            }
        }
    }
}

impl fmt::Display for Esop {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.cubes.is_empty() {
            return write!(f, "0");
        }
        for (i, c) in self.cubes.iter().enumerate() {
            if i > 0 {
                write!(f, " ^ ")?;
            }
            write!(f, "{}", c.to_pla_string(self.num_vars))?;
        }
        Ok(())
    }
}

/// A multi-output ESOP: cubes shared across outputs via an output mask.
///
/// Bit `j` of a cube's mask means the cube feeds output `j`. This mirrors the
/// `.esop`/PLA convention used by ABC's `&exorcism` and is exactly the input
/// format of REVS' ESOP mode.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct MultiEsop {
    num_vars: usize,
    num_outputs: usize,
    cubes: Vec<(Cube, u64)>,
}

impl MultiEsop {
    /// An empty (all outputs constant zero) multi-output ESOP.
    ///
    /// # Panics
    ///
    /// Panics if `num_outputs` is 0 or greater than 64.
    pub fn zero(num_vars: usize, num_outputs: usize) -> Self {
        assert!(num_outputs > 0 && num_outputs <= 64);
        Self {
            num_vars,
            num_outputs,
            cubes: Vec::new(),
        }
    }

    /// Builds from `(cube, output mask)` pairs.
    pub fn from_cubes(num_vars: usize, num_outputs: usize, cubes: Vec<(Cube, u64)>) -> Self {
        let mut e = Self::zero(num_vars, num_outputs);
        e.cubes = cubes;
        e
    }

    /// Combines per-output single ESOPs, sharing identical cubes.
    pub fn from_single_outputs(esops: &[Esop]) -> Self {
        assert!(!esops.is_empty());
        let num_vars = esops[0].num_vars();
        let mut map = std::collections::BTreeMap::new();
        for (j, e) in esops.iter().enumerate() {
            assert_eq!(e.num_vars(), num_vars, "arity mismatch");
            for c in e.cubes() {
                *map.entry(*c).or_insert(0u64) ^= 1 << j;
            }
        }
        let cubes = map.into_iter().filter(|&(_, m)| m != 0).collect();
        Self {
            num_vars,
            num_outputs: esops.len(),
            cubes,
        }
    }

    /// Number of input variables.
    pub fn num_vars(&self) -> usize {
        self.num_vars
    }

    /// Number of outputs.
    pub fn num_outputs(&self) -> usize {
        self.num_outputs
    }

    /// The `(cube, output mask)` pairs.
    pub fn cubes(&self) -> &[(Cube, u64)] {
        &self.cubes
    }

    /// Mutable access for minimization passes.
    pub fn cubes_mut(&mut self) -> &mut Vec<(Cube, u64)> {
        &mut self.cubes
    }

    /// Number of distinct cubes.
    pub fn len(&self) -> usize {
        self.cubes.len()
    }

    /// Whether there are no cubes.
    pub fn is_empty(&self) -> bool {
        self.cubes.is_empty()
    }

    /// Evaluates all outputs on assignment `x`, returned as a word.
    pub fn eval(&self, x: u64) -> u64 {
        self.cubes
            .iter()
            .filter(|(c, _)| c.eval(x))
            .fold(0, |acc, &(_, m)| acc ^ m)
    }

    /// Expands to an explicit multi-output truth table (verification).
    pub fn to_truth_table(&self) -> MultiTruthTable {
        MultiTruthTable::from_fn(self.num_vars, self.num_outputs, |x| self.eval(x))
    }

    /// Merges duplicate cubes (XOR-ing their masks) and drops cubes with an
    /// empty output mask. Leaves the cubes sorted by `(cube, mask)` — see
    /// [`xor_dedupe_sorted`].
    pub fn dedupe(&mut self) {
        self.cubes = xor_dedupe_sorted(std::mem::take(&mut self.cubes));
    }

    /// Single ESOP restricted to output `j`.
    pub fn output(&self, j: usize) -> Esop {
        let cubes = self
            .cubes
            .iter()
            .filter(|&&(_, m)| (m >> j) & 1 == 1)
            .map(|&(c, _)| c)
            .collect();
        Esop::from_cubes(self.num_vars, cubes)
    }
}

/// The canonical XOR dedupe over `(cube, output mask)` pairs: duplicate
/// cubes merge by XOR-ing their masks, cubes whose mask cancels to zero
/// are dropped, and the result comes back sorted by `(cube, mask)`.
///
/// This is both [`MultiEsop::dedupe`] and the array-state contract the
/// exorcism replay engine (`qda-classical`) relies on — keeping one
/// implementation makes their equivalence structural.
pub fn xor_dedupe_sorted(cubes: Vec<(Cube, u64)>) -> Vec<(Cube, u64)> {
    let mut map = std::collections::BTreeMap::new();
    for (c, m) in cubes {
        *map.entry(c).or_insert(0u64) ^= m;
    }
    map.into_iter().filter(|&(_, m)| m != 0).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn minterm_expansion_round_trips() {
        let tt = TruthTable::from_fn(4, |x| x % 5 == 0);
        let esop = Esop::from_truth_table(&tt);
        assert_eq!(esop.to_truth_table(), tt);
    }

    #[test]
    fn reduce_preserves_function_and_shrinks() {
        let tt = TruthTable::from_fn(4, |x| x < 8); // = !x3, one cube
        let mut esop = Esop::from_truth_table(&tt);
        let before = esop.len();
        esop.reduce();
        assert_eq!(esop.to_truth_table(), tt);
        assert!(esop.len() < before);
        assert_eq!(esop.len(), 1);
    }

    #[test]
    fn reduce_cancels_duplicates() {
        let c = Cube::minterm(3, 5);
        let mut esop = Esop::from_cubes(3, vec![c, c]);
        esop.reduce();
        assert!(esop.is_empty());
        assert!(esop.to_truth_table().is_zero());
    }

    #[test]
    fn multi_esop_shares_cubes() {
        let a = Esop::from_cubes(3, vec![Cube::minterm(3, 1), Cube::minterm(3, 2)]);
        let b = Esop::from_cubes(3, vec![Cube::minterm(3, 1)]);
        let m = MultiEsop::from_single_outputs(&[a.clone(), b.clone()]);
        // minterm(1) shared between both outputs → single entry with mask 0b11
        assert_eq!(m.len(), 2);
        assert_eq!(m.eval(1), 0b11);
        assert_eq!(m.eval(2), 0b01);
        assert_eq!(m.output(0).to_truth_table(), a.to_truth_table());
        assert_eq!(m.output(1).to_truth_table(), b.to_truth_table());
    }

    #[test]
    fn dedupe_merges_masks() {
        let c = Cube::minterm(2, 0);
        let mut m = MultiEsop::from_cubes(2, 2, vec![(c, 0b01), (c, 0b11)]);
        m.dedupe();
        assert_eq!(m.len(), 1);
        assert_eq!(m.cubes()[0].1, 0b10);
    }

    #[test]
    fn display_forms() {
        let esop = Esop::from_cubes(2, vec![Cube::tautology().with_literal(1, false)]);
        assert_eq!(esop.to_string(), "-0");
        assert_eq!(Esop::zero(2).to_string(), "0");
    }
}
