//! Offline stand-in for the subset of the `proptest` crate this workspace
//! uses.
//!
//! The [`proptest!`] macro runs each property against
//! [`test_runner::ProptestConfig::cases`] pseudo-random inputs drawn from
//! the given [`strategy::Strategy`] values. Generation is deterministic
//! (seeded from the test name), and there is **no shrinking**: a failing
//! case panics with the regular `assert!`/`assert_eq!` message.
//!
//! # Example
//!
//! ```
//! use proptest::prelude::*;
//! use proptest::strategy::Strategy;
//! use proptest::test_runner::TestRng;
//!
//! let strat = (0usize..4).prop_map(|x| x * 2);
//! let mut rng = TestRng::from_name("doc");
//! let v = strat.generate(&mut rng);
//! assert!(v % 2 == 0 && v < 8);
//! ```

pub mod test_runner {
    //! Deterministic case generation: RNG and per-test configuration.

    /// SplitMix64 random source handed to strategies.
    #[derive(Clone, Debug)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Seeds a generator from a test name (FNV-1a over the bytes).
        pub fn from_name(name: &str) -> Self {
            let mut h: u64 = 0xCBF2_9CE4_8422_2325;
            for b in name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01B3);
            }
            TestRng { state: h }
        }

        /// Returns the next word of the stream.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Splits off an independent generator (used by `prop_perturb`).
        pub fn fork(&mut self) -> TestRng {
            TestRng {
                state: self.next_u64() ^ 0xA5A5_A5A5_A5A5_A5A5,
            }
        }
    }

    /// Marker for the RNG algorithm (API compatibility only — the shim
    /// always uses SplitMix64).
    #[derive(Clone, Copy, PartialEq, Eq, Debug)]
    pub enum RngAlgorithm {
        /// ChaCha stream cipher (upstream default).
        ChaCha,
        /// Xorshift-family generator.
        XorShift,
    }

    /// Per-property configuration; only `cases` is honoured.
    #[derive(Clone, Debug)]
    pub struct ProptestConfig {
        /// Number of random cases to run per property.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// Configuration running `cases` cases.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        /// As upstream proptest: the `PROPTEST_CASES` environment variable
        /// overrides the built-in default of 256 cases, so CI can dial the
        /// effort per job (e.g. a fast fixed-seed release-mode sweep) without
        /// touching every suite.
        fn default() -> Self {
            let cases = std::env::var("PROPTEST_CASES")
                .ok()
                .and_then(|v| v.trim().parse().ok())
                .unwrap_or(256);
            ProptestConfig { cases }
        }
    }
}

pub mod strategy {
    //! The [`Strategy`] trait and combinators.

    use crate::test_runner::TestRng;

    /// A recipe for generating values of `Self::Value`.
    pub trait Strategy {
        /// The type of value this strategy generates.
        type Value;

        /// Draws one value from `rng`.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { base: self, f }
        }

        /// Maps generated values through `f`, additionally handing `f` an
        /// independent RNG.
        fn prop_perturb<O, F>(self, f: F) -> Perturb<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value, TestRng) -> O,
        {
            Perturb { base: self, f }
        }
    }

    /// Strategy that always yields a clone of its value.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// See [`Strategy::prop_map`].
    #[derive(Clone, Debug)]
    pub struct Map<S, F> {
        base: S,
        f: F,
    }

    impl<S, O, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;

        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.base.generate(rng))
        }
    }

    /// See [`Strategy::prop_perturb`].
    #[derive(Clone, Debug)]
    pub struct Perturb<S, F> {
        base: S,
        f: F,
    }

    impl<S, O, F> Strategy for Perturb<S, F>
    where
        S: Strategy,
        F: Fn(S::Value, TestRng) -> O,
    {
        type Value = O;

        fn generate(&self, rng: &mut TestRng) -> O {
            let value = self.base.generate(rng);
            let fork = rng.fork();
            (self.f)(value, fork)
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    let span = (self.end - self.start) as u64;
                    assert!(span > 0, "empty range strategy");
                    self.start + (rng.next_u64() % span) as $t
                }
            }
        )*};
    }

    impl_range_strategy!(u8, u16, u32, u64, usize);

    macro_rules! impl_tuple_strategy {
        ($($s:ident . $idx:tt),+) => {
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);

                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        };
    }

    impl_tuple_strategy!(A.0);
    impl_tuple_strategy!(A.0, B.1);
    impl_tuple_strategy!(A.0, B.1, C.2);
    impl_tuple_strategy!(A.0, B.1, C.2, D.3);
    impl_tuple_strategy!(A.0, B.1, C.2, D.3, E.4);
}

pub mod arbitrary {
    //! The [`any`] entry point for type-directed generation.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Types with a canonical "any value" strategy.
    pub trait Arbitrary: Sized {
        /// Draws one arbitrary value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    impl Arbitrary for u64 {
        fn arbitrary(rng: &mut TestRng) -> Self {
            rng.next_u64()
        }
    }

    impl Arbitrary for u32 {
        fn arbitrary(rng: &mut TestRng) -> Self {
            (rng.next_u64() >> 32) as u32
        }
    }

    impl Arbitrary for u16 {
        fn arbitrary(rng: &mut TestRng) -> Self {
            (rng.next_u64() >> 48) as u16
        }
    }

    impl Arbitrary for u8 {
        fn arbitrary(rng: &mut TestRng) -> Self {
            (rng.next_u64() >> 56) as u8
        }
    }

    impl Arbitrary for usize {
        fn arbitrary(rng: &mut TestRng) -> Self {
            rng.next_u64() as usize
        }
    }

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> Self {
            rng.next_u64() & 1 == 1
        }
    }

    /// Strategy generating arbitrary values of `T` (see [`any`]).
    #[derive(Clone, Copy, Debug, Default)]
    pub struct Any<T>(core::marker::PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// The strategy of all values of `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(core::marker::PhantomData)
    }
}

pub mod collection {
    //! Strategies for collections.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Length specification for [`vec()`]: an exact length or a half-open
    /// range.
    #[derive(Clone, Debug)]
    pub struct SizeRange {
        start: usize,
        end: usize,
    }

    impl From<usize> for SizeRange {
        fn from(len: usize) -> Self {
            SizeRange {
                start: len,
                end: len + 1,
            }
        }
    }

    impl From<core::ops::Range<usize>> for SizeRange {
        fn from(r: core::ops::Range<usize>) -> Self {
            assert!(r.end > r.start, "empty size range");
            SizeRange {
                start: r.start,
                end: r.end,
            }
        }
    }

    /// See [`vec()`].
    #[derive(Clone, Debug)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.end - self.size.start) as u64;
            let len = self.size.start + (rng.next_u64() % span) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// Generates `Vec`s of values from `element` with a length drawn from
    /// `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }
}

pub mod prelude {
    //! Glob-import surface mirroring `proptest::prelude`.

    pub use crate::arbitrary::any;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};

    /// Alias of the crate root, so `prop::collection::vec(..)` works.
    pub use crate as prop;
}

/// Asserts a property holds (plain `assert!`: failures panic, no
/// shrinking).
#[macro_export]
macro_rules! prop_assert {
    ($($t:tt)*) => { assert!($($t)*) };
}

/// Asserts two values are equal (plain `assert_eq!`).
#[macro_export]
macro_rules! prop_assert_eq {
    ($($t:tt)*) => { assert_eq!($($t)*) };
}

/// Asserts two values differ (plain `assert_ne!`).
#[macro_export]
macro_rules! prop_assert_ne {
    ($($t:tt)*) => { assert_ne!($($t)*) };
}

/// Declares property tests: each `fn name(arg in strategy, ..) { .. }`
/// becomes a `#[test]` running the body against `ProptestConfig::cases`
/// generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { config = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! {
            config = $crate::test_runner::ProptestConfig::default();
            $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (config = $cfg:expr; $(
        $(#[$meta:meta])*
        fn $name:ident ( $($arg:ident in $strat:expr),+ $(,)? ) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let __config = $cfg;
            let mut __rng = $crate::test_runner::TestRng::from_name(stringify!($name));
            for __case in 0..__config.cases {
                $(
                    let $arg = $crate::strategy::Strategy::generate(&$strat, &mut __rng);
                )+
                $body
            }
        }
    )*};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = TestRng::from_name("ranges");
        for _ in 0..256 {
            let v = (3usize..9).generate(&mut rng);
            assert!((3..9).contains(&v));
        }
    }

    #[test]
    fn vec_strategy_respects_size_range() {
        let mut rng = TestRng::from_name("vec");
        for _ in 0..64 {
            let v = prop::collection::vec(any::<u64>(), 2..5).generate(&mut rng);
            assert!((2..5).contains(&v.len()));
        }
        let exact = prop::collection::vec(any::<u64>(), 4usize).generate(&mut rng);
        assert_eq!(exact.len(), 4);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn macro_runs_with_config(x in 0u64..10, flip in any::<bool>()) {
            prop_assert!(x < 10);
            let y = if flip { x } else { x + 1 };
            prop_assert_ne!(y, 11);
        }
    }

    proptest! {
        #[test]
        fn perturb_and_map_compose(v in Just(5u64).prop_perturb(|v, mut rng| v + (rng.next_u64() % 5)).prop_map(|v| v * 2)) {
            prop_assert!((10..=18).contains(&v));
            prop_assert_eq!(v % 2, 0);
        }
    }
}
