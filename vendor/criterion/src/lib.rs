//! Offline stand-in for the subset of the `criterion` crate this
//! workspace uses.
//!
//! A plain wall-clock sampler: every benchmark closure is run
//! `sample_size` times and the median/mean sample times are printed to
//! stdout. There is no statistical analysis, warm-up control, or HTML
//! report — just enough to keep `benches/` compiling and producing
//! comparable numbers offline. Passing `--test` (as `cargo test --benches`
//! does) caps sampling at one iteration per benchmark.
//!
//! # Example
//!
//! ```
//! use criterion::{black_box, Criterion};
//!
//! let mut c = Criterion::default();
//! let mut group = c.benchmark_group("doc");
//! group.sample_size(2);
//! group.bench_with_input(criterion::BenchmarkId::new("square", 7), &7u64, |b, &n| {
//!     b.iter(|| black_box(n) * black_box(n))
//! });
//! group.finish();
//! ```

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Re-export of [`std::hint::black_box`].
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Identifies one benchmark: a function name plus a parameter value.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    /// `name/parameter`, matching criterion's display convention.
    pub fn new(name: impl Display, parameter: impl Display) -> Self {
        BenchmarkId {
            name: format!("{name}/{parameter}"),
        }
    }
}

/// Entry point handed to `criterion_group!` functions.
pub struct Criterion {
    test_mode: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            test_mode: std::env::args().any(|a| a == "--test"),
        }
    }
}

impl Criterion {
    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size: 10,
        }
    }
}

/// A named set of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets how many timed samples to collect per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n;
        self
    }

    /// Runs one benchmark over `input`.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let samples = if self.criterion.test_mode {
            1
        } else {
            self.sample_size.max(1)
        };
        let mut times = Vec::with_capacity(samples);
        for _ in 0..samples {
            let mut b = Bencher {
                elapsed: Duration::ZERO,
            };
            f(&mut b, input);
            times.push(b.elapsed);
        }
        times.sort();
        let median = times[times.len() / 2];
        let mean = times.iter().sum::<Duration>() / times.len() as u32;
        println!(
            "{}/{}: median {:?}, mean {:?} ({} samples)",
            self.name, id.name, median, mean, samples
        );
        self
    }

    /// Closes the group (printing is incremental, so this is a no-op).
    pub fn finish(self) {}
}

/// Timer handed to each benchmark closure.
pub struct Bencher {
    elapsed: Duration,
}

impl Bencher {
    /// Times one execution of `f` (criterion batches; the shim does not).
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let start = Instant::now();
        black_box(f());
        self.elapsed = start.elapsed();
    }
}

/// Declares a benchmark group runner function.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_group_runs_closures() {
        let mut c = Criterion { test_mode: true };
        let mut ran = 0u32;
        let mut group = c.benchmark_group("t");
        group.sample_size(5);
        group.bench_with_input(BenchmarkId::new("count", 1), &3u64, |b, &n| {
            b.iter(|| {
                ran += 1;
                n * n
            })
        });
        group.finish();
        assert_eq!(ran, 1); // test mode caps at one sample
    }
}
