//! Offline stand-in for the subset of the `rand` crate this workspace uses.
//!
//! Provides [`rngs::StdRng`], [`Rng`] and [`SeedableRng`] backed by a
//! deterministic SplitMix64 generator. Statistical quality is more than
//! adequate for randomized simulation and equivalence checking; this is
//! **not** a cryptographic generator (neither is the use of `StdRng` here).
//!
//! # Example
//!
//! ```
//! use rand::{rngs::StdRng, Rng, SeedableRng};
//!
//! let mut rng = StdRng::seed_from_u64(42);
//! let a: u64 = rng.gen();
//! let b: u64 = rng.gen();
//! assert_ne!(a, b);
//! // Same seed, same stream.
//! assert_eq!(StdRng::seed_from_u64(42).gen::<u64>(), a);
//! ```

/// Low-level source of random `u64` words.
pub trait RngCore {
    /// Returns the next word of the stream.
    fn next_u64(&mut self) -> u64;
}

/// High-level sampling interface (blanket-implemented for every
/// [`RngCore`]).
pub trait Rng: RngCore {
    /// Samples a value of type `T` from the uniform distribution.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Samples uniformly from `[low, high)`.
    fn gen_range(&mut self, range: core::ops::Range<u64>) -> u64
    where
        Self: Sized,
    {
        let span = range.end - range.start;
        range.start + self.next_u64() % span
    }
}

impl<R: RngCore> Rng for R {}

/// Seeding interface: construct a generator from a `u64` seed.
pub trait SeedableRng: Sized {
    /// Creates a generator whose stream is fully determined by `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types samplable from the "standard" uniform distribution.
pub trait Standard {
    /// Draws one value from `rng`.
    fn sample<R: RngCore>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl Standard for usize {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

impl Standard for bool {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

pub mod rngs {
    //! Concrete generator types.

    /// Deterministic SplitMix64 generator standing in for `rand`'s
    /// `StdRng`.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        state: u64,
    }

    impl crate::SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng { state: seed }
        }
    }

    impl crate::RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..16 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        assert_ne!(a.gen::<u64>(), b.gen::<u64>());
    }

    #[test]
    fn bool_and_range_sampling() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut saw = [false; 2];
        for _ in 0..64 {
            saw[rng.gen::<bool>() as usize] = true;
            let v = rng.gen_range(10..20);
            assert!((10..20).contains(&v));
        }
        assert!(saw[0] && saw[1]);
    }
}
